//! Majority voting over N redundant replica outputs — the read-back side of
//! N-modular redundancy (NMR).
//!
//! The paper's DCLS scheme *detects* faults by comparing two replicas; it
//! cannot tell which copy is wrong, so recovery is re-execution within the
//! FTTI. Generalizing to N ≥ 3 replicas lets the (assumed fault-free,
//! lockstep-protected) host **vote**: a word corrupted in fewer than
//! ⌈N/2⌉ replicas is outvoted and the computation continues with the
//! correct value — forward recovery with zero re-execution rounds (see
//! [`crate::ftti::RecoveryAnalysis`] with `recovery_rounds: 0`).
//!
//! The vote is bitwise per 32-bit word, exactly like the DCLS compare: a
//! value wins a word only with a **strict majority** (> N/2 replicas agree
//! bitwise). Words where no value reaches a strict majority are *tied*
//! (always the case when two replicas disagree), which is a fail-stop
//! detection: the voted value cannot be trusted and the computation must be
//! re-executed. With N = 2 the voter therefore degenerates to the pairwise
//! DCLS compare — same detections, same surviving value (replica 0's, the
//! tie-break) — which is what keeps two-replica campaign results
//! bit-identical across the NMR generalization.

use std::fmt;

/// Outcome of a majority vote across N replica outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteOutcome {
    /// Every word agreed bitwise across all replicas; the value is safe to
    /// consume (identical to a DCLS match).
    Unanimous,
    /// At least one word disagreed, and **every** disagreeing word was
    /// settled by a strict majority: the voted value masks the corruption
    /// and the computation may continue without re-execution.
    Corrected {
        /// Word index of the first disagreement.
        first_word: usize,
        /// Number of disagreeing words (all outvoted).
        corrected_words: usize,
    },
    /// At least one word had no strict majority (always the case for a
    /// two-replica disagreement, or an N-way split): the voted value is
    /// untrusted — fail-stop and re-execute within the FTTI.
    Tied {
        /// Word index of the first disagreement (tied or corrected).
        first_word: usize,
        /// Words with no strict majority.
        tied_words: usize,
        /// Disagreeing words that *were* settled by a strict majority
        /// (0 when every disagreement tied).
        corrected_words: usize,
    },
}

impl VoteOutcome {
    /// True when all replicas agreed on every word.
    pub fn is_unanimous(&self) -> bool {
        matches!(self, VoteOutcome::Unanimous)
    }

    /// True when every disagreement was outvoted by a strict majority (the
    /// forward-recovery case).
    pub fn is_corrected(&self) -> bool {
        matches!(self, VoteOutcome::Corrected { .. })
    }

    /// Word index of the first disagreement, if any.
    pub fn first_disagreement(&self) -> Option<usize> {
        match *self {
            VoteOutcome::Unanimous => None,
            VoteOutcome::Corrected { first_word, .. } | VoteOutcome::Tied { first_word, .. } => {
                Some(first_word)
            }
        }
    }

    /// Total disagreeing words (corrected + tied).
    pub fn disagreeing_words(&self) -> usize {
        match *self {
            VoteOutcome::Unanimous => 0,
            VoteOutcome::Corrected {
                corrected_words, ..
            } => corrected_words,
            VoteOutcome::Tied {
                tied_words,
                corrected_words,
                ..
            } => tied_words + corrected_words,
        }
    }
}

impl fmt::Display for VoteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VoteOutcome::Unanimous => write!(f, "unanimous"),
            VoteOutcome::Corrected {
                first_word,
                corrected_words,
            } => write!(
                f,
                "corrected ({corrected_words} word(s) outvoted, first at {first_word})"
            ),
            VoteOutcome::Tied {
                first_word,
                tied_words,
                ..
            } => write!(
                f,
                "tied ({tied_words} word(s), first disagreement at {first_word})"
            ),
        }
    }
}

/// A voted read: the per-word majority value plus the vote verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotedWords {
    /// The voted value: per word, the strict-majority value where one
    /// exists, replica 0's word otherwise (the tie-break — only consumed
    /// when the caller accepts [`VoteOutcome::Tied`] data, e.g.
    /// mismatch-tolerant campaign sessions).
    pub value: Vec<u32>,
    /// The verdict.
    pub outcome: VoteOutcome,
}

/// The strict-majority value of one word across replicas, if any.
///
/// Boyer–Moore majority vote with a verification pass: O(replicas) time,
/// O(1) space per word, no allocation.
fn word_majority(replicas: &[&[u32]], w: usize) -> Option<u32> {
    let mut candidate = 0u32;
    let mut count = 0usize;
    for r in replicas {
        let v = r[w];
        if count == 0 {
            candidate = v;
            count = 1;
        } else if v == candidate {
            count += 1;
        } else {
            count -= 1;
        }
    }
    let votes = replicas.iter().filter(|r| r[w] == candidate).count();
    (votes * 2 > replicas.len()).then_some(candidate)
}

/// Votes word-by-word across `replicas` (each of length ≥ `words`).
///
/// # Panics
///
/// Panics when `replicas` is empty or any replica is shorter than `words`
/// (host-side programming errors, like the device reads they mirror).
pub fn majority_vote(replicas: &[&[u32]], words: usize) -> VotedWords {
    assert!(!replicas.is_empty(), "voting requires at least one replica");
    let mut value = Vec::with_capacity(words);
    let mut first: Option<usize> = None;
    let mut corrected_words = 0usize;
    let mut tied_words = 0usize;
    for w in 0..words {
        let reference = replicas[0][w];
        let unanimous = replicas.iter().all(|r| r[w] == reference);
        if unanimous {
            value.push(reference);
            continue;
        }
        if first.is_none() {
            first = Some(w);
        }
        match word_majority(replicas, w) {
            Some(v) => {
                corrected_words += 1;
                value.push(v);
            }
            None => {
                tied_words += 1;
                value.push(reference);
            }
        }
    }
    let outcome = match (first, tied_words) {
        (None, _) => VoteOutcome::Unanimous,
        (Some(first_word), 0) => VoteOutcome::Corrected {
            first_word,
            corrected_words,
        },
        (Some(first_word), _) => VoteOutcome::Tied {
            first_word,
            tied_words,
            corrected_words,
        },
    };
    VotedWords { value, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(replicas: &[&[u32]]) -> VotedWords {
        majority_vote(replicas, replicas[0].len())
    }

    #[test]
    fn three_replica_unanimous() {
        let v = vote(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        assert_eq!(v.outcome, VoteOutcome::Unanimous);
        assert_eq!(v.value, vec![1, 2, 3]);
        assert!(v.outcome.is_unanimous());
        assert_eq!(v.outcome.first_disagreement(), None);
        assert_eq!(v.outcome.disagreeing_words(), 0);
    }

    #[test]
    fn three_replica_single_corrupt_is_corrected() {
        // Each replica corrupt in a different word: every word still has a
        // 2-of-3 strict majority on the clean value.
        let v = vote(&[&[9, 2, 3], &[1, 9, 3], &[1, 2, 9]]);
        assert_eq!(
            v.outcome,
            VoteOutcome::Corrected {
                first_word: 0,
                corrected_words: 3
            }
        );
        assert_eq!(v.value, vec![1, 2, 3], "clean value outvotes each upset");
        assert!(v.outcome.is_corrected());
        assert_eq!(v.outcome.disagreeing_words(), 3);
    }

    #[test]
    fn three_replica_three_way_tie_fails_stop() {
        let v = vote(&[&[1, 7], &[1, 8], &[1, 9]]);
        assert_eq!(
            v.outcome,
            VoteOutcome::Tied {
                first_word: 1,
                tied_words: 1,
                corrected_words: 0
            }
        );
        assert_eq!(v.value, vec![1, 7], "tie-break hands back replica 0");
        assert!(!v.outcome.is_corrected());
        assert_eq!(v.outcome.first_disagreement(), Some(1));
    }

    #[test]
    fn three_replica_majority_on_wrong_value_still_wins_the_word() {
        // Two replicas identically corrupted outvote the clean one — the
        // voter cannot know better; campaign classification decides whether
        // that counts as corrected (it verifies against the reference).
        let v = vote(&[&[5], &[5], &[1]]);
        assert_eq!(v.value, vec![5]);
        assert!(v.outcome.is_corrected());
    }

    #[test]
    fn mixed_corrected_and_tied_words_report_both() {
        let v = vote(&[&[1, 7, 4], &[2, 7, 5], &[1, 9, 6]]);
        assert_eq!(
            v.outcome,
            VoteOutcome::Tied {
                first_word: 0,
                tied_words: 1,
                corrected_words: 2
            }
        );
        // word 0: 2-of-3 majority on 1; word 1: majority on 7; word 2: tie.
        assert_eq!(v.value, vec![1, 7, 4]);
    }

    #[test]
    fn two_replica_disagreement_always_ties() {
        let v = vote(&[&[1, 2, 3, 4], &[1, 9, 3, 8]]);
        assert_eq!(
            v.outcome,
            VoteOutcome::Tied {
                first_word: 1,
                tied_words: 2,
                corrected_words: 0
            }
        );
        assert_eq!(v.value, vec![1, 2, 3, 4], "replica 0 survives, as in DCLS");
    }

    #[test]
    fn five_replica_two_corrupt_is_corrected() {
        let v = vote(&[&[3], &[9], &[3], &[8], &[3]]);
        assert_eq!(v.value, vec![3]);
        assert!(v.outcome.is_corrected());
    }

    #[test]
    fn voting_respects_word_prefix_length() {
        let v = majority_vote(&[&[1, 9], &[1, 8]], 1);
        assert_eq!(v.outcome, VoteOutcome::Unanimous);
        assert_eq!(v.value, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replica_set_panics() {
        majority_vote(&[], 1);
    }
}
