//! Permanent-fault diagnosis and SM quarantine decisions.
//!
//! Redundant execution *detects* faults; this module decides what the
//! fault said about the **hardware**. A transient (droop, particle strike)
//! leaves the device healthy — re-execution is the right response. A
//! permanent SM fault re-manifests every frame, so the only fail-operational
//! response is to *remove the SM from service* and re-plan around the
//! shrunken device (limp-home, see `higpu_pipeline::limp`).
//!
//! The diagnosis chain:
//!
//! 1. **Attribution** — with N ≥ 3 replicas, the minority replica of a
//!    [`crate::vote::VoteOutcome::Corrected`] vote identifies itself; its
//!    placement in the execution trace ([`replica_placement`]) names the
//!    suspect SMs. A DCLS tie (N = 2) cannot attribute — both replicas are
//!    equally suspect ([`minority_replicas`] returns `None`).
//! 2. **Confirmation** — unattributed or merely suspected SMs are probed by
//!    a targeted per-SM BIST sweep ([`sm_bist_sweep`]): a one-block canary
//!    pinned to the suspect stores the `SmId` register; a permanently
//!    faulty SM corrupts its own confession.
//! 3. **Decision** — the [`HealthMonitor`] accumulates per-SM suspicion and
//!    fires a quarantine only on *permanent* evidence or on suspicion
//!    crossing a threshold; transient evidence decays on clean frames.
//!    Unattributed evidence **never** quarantines — removing capacity on a
//!    coin-flip would be a safety regression, not a recovery.

use crate::policy::SrrsScheduler;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::gpu::{Gpu, SimError};
use higpu_sim::isa::SpecialReg;
use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
use higpu_sim::trace::ExecutionTrace;

/// Suspicion increments a single SM must accumulate before the monitor
/// recommends quarantine on circumstantial (non-permanent) evidence.
pub const DEFAULT_QUARANTINE_THRESHOLD: u32 = 3;

/// One piece of fault evidence, classified by how much it says about the
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// Confirmed permanent fault on `sm` (e.g. a failed [`sm_bist_sweep`]
    /// probe): quarantine immediately.
    Permanent {
        /// The convicted SM.
        sm: usize,
    },
    /// Circumstantial evidence against `sm` (e.g. the minority replica of a
    /// corrected vote ran there): accumulates toward the threshold.
    Suspect {
        /// The suspected SM.
        sm: usize,
    },
    /// A fault was detected but no SM can be named (a DCLS tie, a
    /// comparison mismatch with no trace). Never quarantines; escalate to
    /// a targeted [`sm_bist_sweep`] instead.
    Unattributed,
}

/// Per-SM health bookkeeping: accumulates [`Evidence`] and recommends
/// quarantines.
///
/// The monitor only *recommends*; the caller performs the actual
/// [`higpu_sim::gpu::Gpu::quarantine_sm`] so that the decision point stays
/// in the recovery driver (which must also re-plan budgets).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    /// Per-SM suspicion counters.
    suspicion: Vec<u32>,
    /// Quarantine threshold for circumstantial evidence.
    threshold: u32,
    /// Unattributed detections seen (fence counter: these must never turn
    /// into quarantines).
    unattributed: u64,
}

impl HealthMonitor {
    /// Creates a monitor for `num_sms` SMs with the
    /// [`DEFAULT_QUARANTINE_THRESHOLD`].
    pub fn new(num_sms: usize) -> Self {
        Self::with_threshold(num_sms, DEFAULT_QUARANTINE_THRESHOLD)
    }

    /// Creates a monitor with an explicit suspicion threshold (≥ 1).
    pub fn with_threshold(num_sms: usize, threshold: u32) -> Self {
        assert!(threshold >= 1, "a zero threshold would quarantine on air");
        Self {
            suspicion: vec![0; num_sms],
            threshold,
            unattributed: 0,
        }
    }

    /// Records one piece of evidence; returns `Some(sm)` when the monitor
    /// now recommends quarantining that SM.
    ///
    /// Permanent evidence convicts immediately. Suspicion accumulates and
    /// convicts at the threshold. Unattributed evidence is counted but
    /// **never** convicts — that is the fence the limp-home safety argument
    /// relies on.
    pub fn record(&mut self, ev: Evidence) -> Option<usize> {
        match ev {
            Evidence::Permanent { sm } => {
                assert!(sm < self.suspicion.len(), "evidence against nonexistent SM");
                self.suspicion[sm] = self.threshold;
                Some(sm)
            }
            Evidence::Suspect { sm } => {
                assert!(sm < self.suspicion.len(), "evidence against nonexistent SM");
                self.suspicion[sm] = (self.suspicion[sm] + 1).min(self.threshold);
                (self.suspicion[sm] >= self.threshold).then_some(sm)
            }
            Evidence::Unattributed => {
                self.unattributed += 1;
                None
            }
        }
    }

    /// Marks the end of a fault-free frame: transient suspicion decays by
    /// one. Permanent faults re-manifest every frame, so their suspicion is
    /// replenished faster than it decays; a one-off transient is forgotten.
    pub fn frame_clean(&mut self) {
        for s in &mut self.suspicion {
            *s = s.saturating_sub(1);
        }
    }

    /// Current suspicion against `sm`.
    pub fn suspicion(&self, sm: usize) -> u32 {
        self.suspicion.get(sm).copied().unwrap_or(0)
    }

    /// Unattributed detections recorded so far (none of which quarantined).
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }
}

/// Replica indices whose output disagrees with the voted value — the
/// minority of a corrected N ≥ 3 vote.
///
/// Returns `None` when attribution is impossible: fewer than three
/// replicas (a DCLS tie leaves both replicas equally suspect; escalate to
/// [`sm_bist_sweep`]) or mismatched lengths.
pub fn minority_replicas(outputs: &[&[u32]], voted: &[u32]) -> Option<Vec<usize>> {
    if outputs.len() < 3 || outputs.iter().any(|o| o.len() != voted.len()) {
        return None;
    }
    Some(
        outputs
            .iter()
            .enumerate()
            .filter(|(_, o)| **o != voted)
            .map(|(r, _)| r)
            .collect(),
    )
}

/// SMs on which replica `replica` of redundancy group `group` executed,
/// from the trace — maps a convicted minority replica back to its physical
/// placement (the suspect set for the [`HealthMonitor`]).
pub fn replica_placement(trace: &ExecutionTrace, group: u32, replica: u8) -> Vec<usize> {
    let mut sms: Vec<usize> = trace
        .kernels
        .iter()
        .filter(|k| {
            k.attrs
                .redundant
                .is_some_and(|t| t.group == group && t.replica == replica)
        })
        .flat_map(|k| trace.blocks_of(k.id).map(|b| b.sm))
        .collect();
    sms.sort_unstable();
    sms.dedup();
    sms
}

/// Probes each suspect SM with a one-block canary and returns the SMs that
/// failed the probe (confirmed permanent faults).
///
/// The canary stores the executing SM's `SmId` register; on a permanently
/// faulty SM the stored confession comes back corrupted, while a transient
/// whose window has passed leaves the probe clean — this is what separates
/// "re-execute" from "remove from service". The sweep installs the SRRS
/// policy (for its pinned `start_sm` placement) and leaves it installed;
/// callers that need a different policy must re-install it afterwards.
/// Already-quarantined and out-of-range suspects are skipped (the rotation
/// could not pin a canary to them).
///
/// # Errors
///
/// Propagates simulator errors (the GPU must be idle; device memory must
/// have a free word per probe).
pub fn sm_bist_sweep(gpu: &mut Gpu, suspects: &[usize]) -> Result<Vec<usize>, SimError> {
    let num_sms = gpu.config().num_sms;
    gpu.set_policy(Box::new(SrrsScheduler::new()))?;

    let mut b = KernelBuilder::new("sm_bist_probe");
    let out = b.param(0);
    let smid = b.special(SpecialReg::SmId);
    let zero = b.mov(0u32);
    let addr = b.addr_w(out, zero);
    b.stg(addr, 0, smid);
    let prog = b.build().expect("probe is well-formed").into_shared();

    let mut convicted = Vec::new();
    for &sm in suspects {
        if sm >= num_sms || gpu.is_quarantined(sm) {
            continue;
        }
        let buf = gpu.alloc_words(1)?;
        // A probe that never runs must not read back as a pass.
        gpu.write_u32(buf, &[u32::MAX]);
        gpu.launch(
            KernelLaunch::new(
                prog.clone(),
                LaunchConfig::new(1u32, 32u32).param_u32(buf.0),
            )
            .tag(format!("sm_bist_probe:{sm}"))
            .start_sm(sm),
        )?;
        gpu.run_to_idle()?;
        if gpu.read_u32(buf, 1)[0] as usize != sm {
            convicted.push(sm);
        }
    }
    Ok(convicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::fault::{FaultCtx, FaultHook};

    #[test]
    fn permanent_evidence_convicts_immediately() {
        let mut m = HealthMonitor::new(6);
        assert_eq!(m.record(Evidence::Permanent { sm: 4 }), Some(4));
    }

    #[test]
    fn suspicion_accumulates_to_the_threshold() {
        let mut m = HealthMonitor::with_threshold(6, 3);
        assert_eq!(m.record(Evidence::Suspect { sm: 2 }), None);
        assert_eq!(m.record(Evidence::Suspect { sm: 2 }), None);
        assert_eq!(m.record(Evidence::Suspect { sm: 2 }), Some(2));
        assert_eq!(m.suspicion(2), 3);
        assert_eq!(m.suspicion(1), 0, "suspicion is per-SM");
    }

    #[test]
    fn unattributed_evidence_never_quarantines() {
        // Satellite fence: a DCLS tie cannot name a culprit, and the monitor
        // must never convert "somewhere, something" into a capacity loss.
        let mut m = HealthMonitor::with_threshold(6, 1);
        for _ in 0..100 {
            assert_eq!(m.record(Evidence::Unattributed), None);
        }
        assert_eq!(m.unattributed(), 100);
        assert!((0..6).all(|sm| m.suspicion(sm) == 0));
    }

    #[test]
    fn clean_frames_decay_transient_suspicion() {
        let mut m = HealthMonitor::with_threshold(6, 3);
        m.record(Evidence::Suspect { sm: 1 });
        m.record(Evidence::Suspect { sm: 1 });
        m.frame_clean();
        m.frame_clean();
        assert_eq!(m.suspicion(1), 0, "a one-off transient is forgotten");
        // A fault that re-manifests each frame outruns the decay.
        for _ in 0..3 {
            m.record(Evidence::Suspect { sm: 1 });
            m.frame_clean();
        }
        assert_eq!(
            m.record(Evidence::Suspect { sm: 1 }),
            None,
            "net +0 per clean frame keeps it below a threshold of 3"
        );
        m.record(Evidence::Suspect { sm: 1 });
        assert_eq!(m.record(Evidence::Suspect { sm: 1 }), Some(1));
    }

    #[test]
    fn minority_attribution_requires_three_replicas() {
        let a = [1u32, 2, 3];
        let b = [1u32, 9, 3];
        let voted = [1u32, 2, 3];
        assert_eq!(
            minority_replicas(&[&a, &b], &voted),
            None,
            "DCLS cannot attribute"
        );
        assert_eq!(
            minority_replicas(&[&a, &b, &a], &voted),
            Some(vec![1]),
            "the out-voted replica names itself"
        );
        assert_eq!(minority_replicas(&[&a, &a, &a], &voted), Some(vec![]));
    }

    #[test]
    fn replica_placement_reads_the_trace() {
        use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs, RedundantTag};
        use higpu_sim::trace::{BlockRecord, KernelRecord};
        let mut t = ExecutionTrace::new();
        for (id, replica, sm) in [(0u64, 0u8, 1usize), (1, 1, 4), (1, 1, 5)] {
            t.kernels.push(KernelRecord {
                id: KernelId(id),
                program: "k".into(),
                attrs: LaunchAttrs {
                    redundant: Some(RedundantTag { group: 7, replica }),
                    ..Default::default()
                },
                launched: 0,
                arrival: 0,
                first_dispatch: Some(0),
                completion: Some(1),
                blocks: 1,
                footprint: BlockFootprint::default(),
            });
            t.blocks.push(BlockRecord {
                kernel: KernelId(id),
                block: 0,
                sm,
                start: 0,
                end: 1,
            });
        }
        assert_eq!(replica_placement(&t, 7, 1), vec![4, 5]);
        assert_eq!(replica_placement(&t, 7, 0), vec![1]);
        assert_eq!(replica_placement(&t, 8, 0), Vec::<usize>::new());
    }

    /// Permanently corrupts every value produced on one SM (test double for
    /// the `higpu_faults` permanent-SM model, which cannot be used here —
    /// that crate depends on this one).
    struct StuckSm {
        sm: usize,
    }

    impl FaultHook for StuckSm {
        fn armed(&self, ctx: &FaultCtx) -> bool {
            ctx.sm == self.sm
        }
        fn corrupt_value(&mut self, ctx: &FaultCtx, _lane: usize, value: u32) -> u32 {
            if ctx.sm == self.sm {
                value ^ 0x20
            } else {
                value
            }
        }
    }

    #[test]
    fn bist_sweep_convicts_the_permanently_faulty_sm() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        gpu.set_fault_hook(Box::new(StuckSm { sm: 3 }));
        let convicted = sm_bist_sweep(&mut gpu, &[0, 3, 5]).expect("sweep runs");
        assert_eq!(convicted, vec![3], "the probe's confession is corrupted");
    }

    #[test]
    fn bist_sweep_is_clean_on_a_healthy_device() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let convicted = sm_bist_sweep(&mut gpu, &[0, 1, 2, 3, 4, 5]).expect("sweep runs");
        assert!(convicted.is_empty(), "no false convictions: {convicted:?}");
    }

    #[test]
    fn bist_sweep_skips_quarantined_suspects() {
        // A quarantined SM can no longer host the canary; probing it would
        // misplace the block on a healthy SM and convict an innocent.
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        gpu.quarantine_sm(2);
        let convicted = sm_bist_sweep(&mut gpu, &[2, 4]).expect("sweep runs");
        assert!(convicted.is_empty(), "{convicted:?}");
    }
}
