//! Fences for the campaign-level trivial-trial fast path.
//!
//! A `TransientSm`/`VoltageDroop` model whose corruption window opens
//! strictly after the fault-free makespan can never corrupt anything, so
//! [`higpu_faults::campaign::trivially_not_activated`] lets campaign
//! engines classify it `NotActivated` without simulating. These tests pin
//! the two sides of that claim:
//!
//! * **boundary** — the predicate flips exactly between `arm == makespan`
//!   (last instruction still corruptible) and `arm == makespan + 1`, and
//!   for skippable models the *simulated* trial agrees with the synthesized
//!   outcome and observables bit-for-bit;
//! * **worker fence** — a full sweep over a hand-built model list (in-window
//!   and beyond-window arms mixed) through the fast-path-aware entry point
//!   at 1, 2 and 8 workers is per-trial bit-identical to the unskipped
//!   serial sweep of the same models.

use higpu_core::redundancy::RedundancyMode;
use higpu_faults::campaign::{
    claim_chunk, dry_run_makespan, ftti_deadline, trivially_not_activated, CampaignConfig,
    CampaignRunner, TrialObservables, TrialOutcome,
};
use higpu_faults::model::FaultModel;
use higpu_faults::workload::{IteratedFma, RedundantWorkload};
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;

fn workload() -> IteratedFma {
    IteratedFma {
        n: 128,
        threads_per_block: 64,
        iters: 8,
    }
}

fn mode() -> RedundancyMode {
    RedundancyMode::srrs_default(6)
}

fn transient(start: u64) -> FaultModel {
    FaultModel::TransientSm {
        sm: 0,
        start,
        duration: 50,
        bit: 3,
    }
}

fn droop(start: u64) -> FaultModel {
    FaultModel::VoltageDroop {
        start,
        duration: 50,
        bit: 7,
    }
}

#[test]
fn predicate_flips_strictly_after_the_makespan() {
    let cfg = CampaignConfig::default();
    let wl = workload();
    let mode = mode();
    let makespan = dry_run_makespan(&cfg, &mode, &wl).expect("dry run");
    assert!(makespan > 1, "workload too small to exercise the boundary");
    let deadline = Some(ftti_deadline(makespan, wl.ftti_multiplier()));

    for mk in [transient as fn(u64) -> FaultModel, droop] {
        assert!(!trivially_not_activated(
            mk(makespan - 1),
            makespan,
            deadline
        ));
        assert!(
            !trivially_not_activated(mk(makespan), makespan, deadline),
            "the last instruction issues at the makespan cycle — arm == makespan may corrupt it"
        );
        assert!(trivially_not_activated(
            mk(makespan + 1),
            makespan,
            deadline
        ));
        assert!(trivially_not_activated(mk(u64::MAX), makespan, deadline));
    }

    // Permanent faults and misroutes always simulate (quarantine/diversity
    // analysis is part of their trial), however late the arm.
    assert!(!trivially_not_activated(
        FaultModel::PermanentSm {
            sm: 0,
            from_cycle: makespan + 1,
            bit: 3,
        },
        makespan,
        deadline,
    ));
    // A watchdog tighter than the fault-free makespan would cut the run
    // before it finishes: not trivial.
    assert!(!trivially_not_activated(
        transient(makespan + 1),
        makespan,
        Some(makespan - 1),
    ));
}

#[test]
fn skipped_trial_matches_the_simulated_one_at_the_boundary() {
    let cfg = CampaignConfig::default();
    let wl = workload();
    let mode = mode();
    let makespan = dry_run_makespan(&cfg, &mode, &wl).expect("dry run");
    let deadline = Some(ftti_deadline(makespan, wl.ftti_multiplier()));
    let mut runner = CampaignRunner::new(&cfg);

    for mk in [transient as fn(u64) -> FaultModel, droop] {
        for arm in [makespan - 1, makespan, makespan + 1, makespan + 1000] {
            let model = mk(arm);
            // Ground truth: the fully simulated trial.
            let (sim_outcome, sim_obs) = runner
                .run_trial_observed(&mode, &wl, model, deadline, None)
                .expect("simulated trial");
            // Fast-path-aware entry point (skips iff the predicate holds).
            let (fast_outcome, fast_obs) = runner
                .run_trial_observed_with_makespan(&mode, &wl, model, deadline, None, makespan)
                .expect("fast-path trial");
            assert_eq!(sim_outcome, fast_outcome, "outcome diverged at arm {arm}");
            assert_eq!(sim_obs, fast_obs, "observables diverged at arm {arm}");
            if trivially_not_activated(model, makespan, deadline) {
                assert_eq!(sim_outcome, TrialOutcome::NotActivated);
                assert_eq!(
                    sim_obs.end_cycle, makespan,
                    "an inert fault leaves the run ending at the fault-free makespan"
                );
                assert!(!sim_obs.activated);
                assert_eq!(sim_obs.restores, 0);
            }
        }
    }
}

/// Runs `models` through the fast-path-aware runner entry point on
/// `workers` threads using the campaign engines' chunk-claiming loop;
/// returns per-trial `(outcome, observables)` indexed by trial.
fn sweep(
    cfg: &CampaignConfig,
    models: &[FaultModel],
    makespan: u64,
    workers: usize,
) -> Vec<(TrialOutcome, TrialObservables)> {
    let wl = workload();
    let mode = mode();
    let deadline = Some(ftti_deadline(makespan, wl.ftti_multiplier()));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(TrialOutcome, TrialObservables)>>> =
        Mutex::new(vec![None; models.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut runner = CampaignRunner::new(cfg);
                while let Some(range) = claim_chunk(&next, models.len(), workers) {
                    for i in range {
                        let trial = runner
                            .run_trial_observed_with_makespan(
                                &mode, &wl, models[i], deadline, None, makespan,
                            )
                            .expect("trial");
                        results.lock().unwrap()[i] = Some(trial);
                    }
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|t| t.expect("every trial ran"))
        .collect()
}

#[test]
fn sweep_with_skips_is_bit_identical_to_unskipped_at_1_2_8_workers() {
    let cfg = CampaignConfig::default();
    let wl = workload();
    let mode = mode();
    let makespan = dry_run_makespan(&cfg, &mode, &wl).expect("dry run");
    let deadline = Some(ftti_deadline(makespan, wl.ftti_multiplier()));

    // In-window, boundary and beyond-window arms, both trivial model kinds.
    let mut models = Vec::new();
    for arm in [
        0,
        makespan / 2,
        makespan - 1,
        makespan,
        makespan + 1,
        makespan + 1000,
    ] {
        models.push(transient(arm));
        models.push(droop(arm));
    }

    // Unskipped serial oracle: every trial fully simulated.
    let mut runner = CampaignRunner::new(&cfg);
    let oracle: Vec<(TrialOutcome, TrialObservables)> = models
        .iter()
        .map(|&model| {
            runner
                .run_trial_observed(&mode, &wl, model, deadline, None)
                .expect("oracle trial")
        })
        .collect();
    assert!(
        oracle
            .iter()
            .zip(&models)
            .any(|(_, m)| trivially_not_activated(*m, makespan, deadline)),
        "model list must contain trivially skippable trials"
    );

    for workers in [1, 2, 8] {
        let got = sweep(&cfg, &models, makespan, workers);
        assert_eq!(
            got, oracle,
            "fast-path sweep diverged from the unskipped serial sweep at {workers} workers"
        );
    }
}
