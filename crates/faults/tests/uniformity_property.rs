//! Randomized property fence for the uniformity-tracked register file.
//!
//! The interpreter tracks per-warp register uniformity (one bitmap bit per
//! row) and lets fast paths scalarize uniform work — but only while no
//! fault hook is armed; an armed hook forces the per-lane masked loop that
//! exhaustively materializes every lane. That gives a built-in oracle:
//!
//! * the **reference** run wraps the injector in `AlwaysArmed`, so every
//!   instruction of the whole run takes the exhaustive per-lane path — the
//!   register file is fully materialized, 32 lanes wide, at all times;
//! * the **fast** run uses the plain injector, which is armed only inside
//!   its fault window — outside it the interpreter trusts the uniformity
//!   bitmap (scalarized ALU work, splat row writes, single-sector uniform
//!   memory traffic).
//!
//! Random programs (uniform and divergent arithmetic, data-dependent
//! branches, uniform/stride-1/gathered loads and stores, barriers) are run
//! both ways under both warp-scheduler policies on both cores, across
//! rand-shim seeds, with a mid-run corruption window. Everything observable
//! — the exhaustively stored register pool, scratch memory, cycle count,
//! issue stream and statistics — must be bit-identical: a single falsely
//! claimed-uniform row would splat lane 0 over divergent lanes (or emit the
//! wrong memory sectors) and split the runs.
//!
//! A second fence drives snapshot→restore→run through the same random
//! programs, pausing mid-run so live uniformity bitmaps and decoded-program
//! state cross the snapshot boundary on both cores.

use higpu_faults::injector::{FaultInjector, InjectionCounters};
use higpu_faults::model::FaultModel;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{CoreKind, GpuConfig, WarpSchedPolicy};
use higpu_sim::fault::{FaultCtx, FaultHook};
use higpu_sim::gpu::Gpu;
use higpu_sim::isa::{CmpOp, Reg};
use higpu_sim::kernel::{KernelId, KernelLaunch, LaunchConfig};
use higpu_sim::program::Program;
use higpu_sim::sm::IssueRecord;
use higpu_sim::stats::SimStats;
use higpu_sim::trace::ExecutionTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The pre-optimization reference: reports `armed == true` unconditionally,
/// so the interpreter materializes every lane of every instruction while
/// the wrapped injector corrupts exactly what it would have anyway.
struct AlwaysArmed(FaultInjector);

impl FaultHook for AlwaysArmed {
    fn armed(&self, _ctx: &FaultCtx) -> bool {
        true
    }

    fn corrupt_value(&mut self, ctx: &FaultCtx, lane: usize, value: u32) -> u32 {
        self.0.corrupt_value(ctx, lane, value)
    }

    fn reroute_block(
        &mut self,
        kernel: KernelId,
        block: u32,
        chosen_sm: usize,
        num_sms: usize,
        fits: &dyn Fn(usize) -> bool,
    ) -> usize {
        self.0
            .reroute_block(kernel, block, chosen_sm, num_sms, fits)
    }
}

/// Launch geometry plus the register pool the program materializes.
struct Shape {
    blocks: u32,
    tpb: u32,
    pool: usize,
}

impl Shape {
    fn total(&self) -> u32 {
        self.blocks * self.tpb
    }
}

/// Builds a random program over two buffer params (`scratch`, `out`):
/// a mix of uniform and divergent integer arithmetic, data-dependent
/// branches, loads/stores in uniform, stride-1 and gathered address modes,
/// and barriers — then exhaustively stores every pool register of every
/// thread to `out` (register `j` of global thread `t` lands at word
/// `j * total + t`), materializing the final register file in memory.
fn gen_program(seed: u64) -> (Arc<Program>, Shape) {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = rng.gen_range(1u32..4);
    let tpb = if rng.gen_bool(0.5) { 32u32 } else { 64 };
    let total = blocks * tpb;

    let mut b = KernelBuilder::new("uniprop");
    let scratch = b.param(0);
    let out = b.param(1);
    let tid = b.global_tid_x();
    // The mutable register pool; starts uniform so scalarization has rows
    // to claim, gains divergent rows as tid-dependent values flow in.
    let mut vals: Vec<Reg> = vec![
        b.mov(rng.gen_range(1u32..1000)),
        b.mov(rng.gen_range(1u32..1000)),
    ];
    let pick = |rng: &mut StdRng, vals: &[Reg]| -> Reg {
        // Operands draw from the pool or the divergent tid.
        if rng.gen_bool(0.25) {
            tid
        } else {
            vals[rng.gen_range(0..vals.len())]
        }
    };

    let steps = rng.gen_range(10usize..20);
    for _ in 0..steps {
        match rng.gen_range(0u32..10) {
            0..=3 => {
                // Arithmetic: uniform × uniform stays uniform, anything
                // touching tid diverges.
                let a = pick(&mut rng, &vals);
                let c = pick(&mut rng, &vals);
                let r = match rng.gen_range(0u32..6) {
                    0 => b.iadd(a, c),
                    1 => b.isub(a, c),
                    2 => b.imul(a, c),
                    3 => b.iand(a, c),
                    4 => b.ixor(a, c),
                    _ => b.imax(a, c),
                };
                if vals.len() < 8 {
                    vals.push(r);
                } else {
                    let d = vals[rng.gen_range(0..vals.len())];
                    b.mov_to(d, r);
                }
            }
            4 | 5 => {
                // Data-dependent branch: partial masks, merge_row on
                // reconvergence, re-uniformization when both sides agree.
                let lhs = pick(&mut rng, &vals);
                let thr = rng.gen_range(0u32..total * 2);
                let d = vals[rng.gen_range(0..vals.len())];
                let a = pick(&mut rng, &vals);
                let (x, y) = (rng.gen_range(1u32..100), rng.gen_range(1u32..100));
                let p = b.isetp_u(CmpOp::Lt, lhs, thr);
                b.if_else(p, |bb| bb.iadd_to(d, a, x), |bb| bb.imul_to(d, a, y));
                b.release_preds(1);
            }
            6 | 7 => {
                // Store in a random address mode: uniform (single sector),
                // stride-1 (coalesced row) or gathered.
                let v = pick(&mut rng, &vals);
                let addr = match rng.gen_range(0u32..3) {
                    0 => {
                        let idx = b.mov(rng.gen_range(0u32..total));
                        b.addr_w(scratch, idx)
                    }
                    1 => b.addr_w(scratch, tid),
                    _ => {
                        let spread = b.imad(tid, 3u32, rng.gen_range(0u32..total));
                        let idx = b.irem(spread, total);
                        b.addr_w(scratch, idx)
                    }
                };
                b.stg(addr, 0, v);
            }
            8 => {
                // Load, same address modes.
                let addr = if rng.gen_bool(0.3) {
                    let idx = b.mov(rng.gen_range(0u32..total));
                    b.addr_w(scratch, idx)
                } else {
                    b.addr_w(scratch, tid)
                };
                if vals.len() < 8 {
                    let r = b.ldg(addr, 0);
                    vals.push(r);
                } else {
                    let d = vals[rng.gen_range(0..vals.len())];
                    b.ldg_to(d, addr, 0);
                }
            }
            _ => b.bar(),
        }
    }

    // Exhaustive materialization of the register pool.
    for (j, &r) in vals.iter().enumerate() {
        let off = b.iadd(tid, (j as u32) * total);
        let a = b.addr_w(out, off);
        b.stg(a, 0, r);
    }

    let pool = vals.len();
    (
        b.build().expect("generated program is valid").into_shared(),
        Shape { blocks, tpb, pool },
    )
}

fn gpu_config(policy: WarpSchedPolicy, core: CoreKind) -> GpuConfig {
    GpuConfig {
        warp_scheduler: policy,
        core,
        ..GpuConfig::tiny_2sm()
    }
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct RunOut {
    makespan: u64,
    issues: Vec<IssueRecord>,
    stats: SimStats,
    trace: ExecutionTrace,
    scratch: Vec<u32>,
    out: Vec<u32>,
}

/// Runs the program under `hook` (if any) and collects the observables.
fn run(
    prog: &Arc<Program>,
    shape: &Shape,
    cfg: GpuConfig,
    hook: Option<Box<dyn FaultHook>>,
) -> RunOut {
    let total = shape.total();
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    if let Some(h) = hook {
        gpu.set_fault_hook(h);
    }
    let scratch = gpu.alloc_words(total).expect("alloc scratch");
    let out = gpu
        .alloc_words(total * shape.pool as u32)
        .expect("alloc out");
    let init: Vec<u32> = (0..total).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    gpu.write_u32(scratch, &init);
    gpu.launch(KernelLaunch::new(
        prog.clone(),
        LaunchConfig::new(shape.blocks, shape.tpb)
            .param_u32(scratch.0)
            .param_u32(out.0),
    ))
    .expect("launch");
    let makespan = gpu.run_to_idle().expect("run");
    RunOut {
        makespan,
        issues: gpu.drain_issue_log(),
        stats: gpu.stats(),
        trace: gpu.trace().clone(),
        scratch: gpu.read_u32(scratch, total as usize),
        out: gpu.read_u32(out, (total * shape.pool as u32) as usize),
    }
}

#[test]
fn uniformity_tracked_file_matches_exhaustive_materialization() {
    let mut any_corrupted = false;
    for seed in 0..16u64 {
        let (prog, shape) = gen_program(seed);
        for policy in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
            for core in [CoreKind::Stepping, CoreKind::Event] {
                // Fault-free makespan bounds the corruption window so the
                // window closes mid-run and fast paths resume after it.
                let clean = run(&prog, &shape, gpu_config(policy, core), None);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
                let start = rng.gen_range(0..clean.makespan.max(2));
                let duration = rng.gen_range(1..clean.makespan / 2 + 2);
                let model = FaultModel::TransientSm {
                    sm: rng.gen_range(0usize..2),
                    start,
                    duration,
                    bit: rng.gen_range(0u8..32),
                };

                let fast_counters = InjectionCounters::shared();
                let fast = run(
                    &prog,
                    &shape,
                    gpu_config(policy, core),
                    Some(Box::new(FaultInjector::new(model, fast_counters.clone()))),
                );
                let reference = run(
                    &prog,
                    &shape,
                    gpu_config(policy, core),
                    Some(Box::new(AlwaysArmed(FaultInjector::new(
                        model,
                        InjectionCounters::shared(),
                    )))),
                );
                assert_eq!(
                    fast, reference,
                    "seed {seed} {policy:?} {core:?}: uniformity-tracked run diverged \
                     from the exhaustively materialized reference"
                );
                any_corrupted |= fast_counters.activated();
            }
        }
    }
    assert!(
        any_corrupted,
        "the sweep never activated a fault — corruption windows are mis-sized"
    );
}

#[test]
fn snapshot_restore_carries_uniformity_state_on_both_cores() {
    for seed in 0..6u64 {
        let (prog, shape) = gen_program(seed);
        for core in [CoreKind::Stepping, CoreKind::Event] {
            let cfg = gpu_config(WarpSchedPolicy::Gto, core);
            let straight = run(&prog, &shape, cfg.clone(), None);

            // Re-drive the same launch, pause mid-run (live warps hold
            // partially-uniform register files), snapshot, and finish both
            // by resuming and by restoring into a bare device.
            let total = shape.total();
            let mut gpu = Gpu::new(cfg.clone());
            gpu.set_issue_log(true);
            let scratch = gpu.alloc_words(total).expect("alloc scratch");
            let out = gpu
                .alloc_words(total * shape.pool as u32)
                .expect("alloc out");
            let init: Vec<u32> = (0..total).map(|i| i.wrapping_mul(2_654_435_761)).collect();
            gpu.write_u32(scratch, &init);
            gpu.launch(KernelLaunch::new(
                prog.clone(),
                LaunchConfig::new(shape.blocks, shape.tpb)
                    .param_u32(scratch.0)
                    .param_u32(out.0),
            ))
            .expect("launch");
            gpu.run_to_cycle(straight.makespan / 2).expect("pause");
            let snap = gpu.snapshot();

            gpu.run_to_idle().expect("resume");
            let resumed = RunOut {
                makespan: gpu.cycle(),
                issues: gpu.drain_issue_log(),
                stats: gpu.stats(),
                trace: gpu.trace().clone(),
                scratch: gpu.read_u32(scratch, total as usize),
                out: gpu.read_u32(out, (total * shape.pool as u32) as usize),
            };
            assert_eq!(
                resumed, straight,
                "seed {seed} {core:?}: pause perturbed run"
            );

            let mut fresh = Gpu::new(cfg);
            fresh.restore(&snap);
            fresh.run_to_idle().expect("restored run");
            let restored = RunOut {
                makespan: fresh.cycle(),
                issues: fresh.drain_issue_log(),
                stats: fresh.stats(),
                trace: fresh.trace().clone(),
                scratch: fresh.read_u32(scratch, total as usize),
                out: fresh.read_u32(out, (total * shape.pool as u32) as usize),
            };
            assert_eq!(
                restored, straight,
                "seed {seed} {core:?}: snapshot→restore→run diverged through the \
                 uniformity-tracked representation"
            );
        }
    }
}
