//! Golden-value tests for the fault-hook fast path.
//!
//! The execution engine asks [`FaultHook::armed`] once per instruction and
//! skips the per-lane `corrupt_value` calls while disarmed. These tests pin
//! down that the optimization is *observationally invisible*: a run with the
//! real [`FaultInjector`] (which gates on `armed`) is bit-identical — output
//! words and execution trace — to a run with a wrapper hook that reports
//! `armed == true` unconditionally, i.e. the pre-optimization behaviour of
//! calling `corrupt_value` on every lane of every instruction.

use higpu_core::redundancy::{Comparison, RParam, RedundancyMode, RedundantExecutor};
use higpu_faults::campaign::{dry_run_makespan, CampaignConfig};
use higpu_faults::injector::{FaultInjector, InjectionCounters};
use higpu_faults::model::FaultModel;
use higpu_faults::workload::IteratedFma;
use higpu_sim::fault::{FaultCtx, FaultHook};
use higpu_sim::gpu::Gpu;
use higpu_sim::kernel::KernelId;
use higpu_sim::trace::ExecutionTrace;

/// The pre-optimization reference: always armed, so `corrupt_value` runs on
/// every lane of every instruction exactly as before the fast path existed.
struct AlwaysArmed(FaultInjector);

impl FaultHook for AlwaysArmed {
    fn armed(&self, _ctx: &FaultCtx) -> bool {
        true
    }

    fn corrupt_value(&mut self, ctx: &FaultCtx, lane: usize, value: u32) -> u32 {
        self.0.corrupt_value(ctx, lane, value)
    }

    fn reroute_block(
        &mut self,
        kernel: KernelId,
        block: u32,
        chosen_sm: usize,
        num_sms: usize,
        fits: &dyn Fn(usize) -> bool,
    ) -> usize {
        self.0
            .reroute_block(kernel, block, chosen_sm, num_sms, fits)
    }
}

fn workload() -> IteratedFma {
    IteratedFma {
        n: 256,
        threads_per_block: 64,
        iters: 12,
    }
}

/// Runs the workload redundantly under `hook`; returns the raw output words
/// of every replica plus the execution trace.
fn run_with_hook(hook: Box<dyn FaultHook>) -> (Vec<Vec<u32>>, ExecutionTrace) {
    let cfg = CampaignConfig::default();
    let wl = workload();
    let mut gpu = Gpu::new(cfg.gpu.clone());
    gpu.set_fault_hook(hook);
    let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
    let prog = wl.program();
    let (x, y) = wl.inputs();
    let xb = exec.alloc_words(wl.n).expect("alloc");
    let yb = exec.alloc_words(wl.n).expect("alloc");
    exec.write_f32(&xb, &x).expect("write");
    exec.write_f32(&yb, &y).expect("write");
    exec.launch(
        &prog,
        wl.n.div_ceil(wl.threads_per_block),
        wl.threads_per_block,
        0,
        &[RParam::Buf(&xb), RParam::Buf(&yb), RParam::U32(wl.n)],
    )
    .expect("launch");
    exec.sync().expect("run");
    let outputs = match exec.read_compare_u32(&yb, wl.n as usize).expect("compare") {
        Comparison::Match(v) => vec![v.clone(), v],
        Comparison::Mismatch { outputs, .. } => outputs,
    };
    drop(exec);
    (outputs, gpu.trace().clone())
}

fn window() -> u64 {
    let cfg = CampaignConfig::default();
    dry_run_makespan(&cfg, &RedundancyMode::srrs_default(6), &workload()).expect("dry run")
}

fn assert_gated_matches_always_armed(model: FaultModel) {
    let gated = run_with_hook(Box::new(FaultInjector::new(
        model,
        InjectionCounters::shared(),
    )));
    let reference = run_with_hook(Box::new(AlwaysArmed(FaultInjector::new(
        model,
        InjectionCounters::shared(),
    ))));
    assert_eq!(
        gated.0, reference.0,
        "output words must be bit-identical for {model:?}"
    );
    assert_eq!(
        gated.1, reference.1,
        "execution traces must be identical for {model:?}"
    );
}

#[test]
fn transient_mid_window_is_bit_identical() {
    let w = window();
    assert_gated_matches_always_armed(FaultModel::TransientSm {
        sm: 0,
        start: w / 4,
        duration: w / 2,
        bit: 12,
    });
}

#[test]
fn permanent_fault_is_bit_identical() {
    assert_gated_matches_always_armed(FaultModel::PermanentSm {
        sm: 3,
        from_cycle: window() / 3,
        bit: 0,
    });
}

#[test]
fn droop_is_bit_identical() {
    let w = window();
    assert_gated_matches_always_armed(FaultModel::VoltageDroop {
        start: w / 2,
        duration: 500,
        bit: 31,
    });
}

#[test]
fn never_opening_window_is_bit_identical_to_fault_free() {
    // A window entirely after the run: the gated hook never arms; results
    // must equal both the always-armed wrapper and a clean machine.
    let w = window();
    let model = FaultModel::TransientSm {
        sm: 0,
        start: w * 10,
        duration: 100,
        bit: 7,
    };
    assert_gated_matches_always_armed(model);
    let gated = run_with_hook(Box::new(FaultInjector::new(
        model,
        InjectionCounters::shared(),
    )));
    let clean = run_with_hook(Box::new(higpu_sim::fault::NoFaults));
    assert_eq!(gated.0, clean.0, "closed window == fault-free run");
}
