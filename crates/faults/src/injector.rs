//! The fault injector: a [`FaultHook`] implementation driven by a
//! [`FaultModel`], with shared activation counters so campaigns can observe
//! whether a fault actually struck.

use crate::model::FaultModel;
use higpu_sim::fault::{FaultCtx, FaultHook};
use higpu_sim::kernel::KernelId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Activation counters shared between the injector (owned by the GPU) and
/// the campaign runner.
#[derive(Debug, Default)]
pub struct InjectionCounters {
    /// Values corrupted.
    pub corrupted_values: AtomicU64,
    /// Block assignments rerouted.
    pub rerouted_blocks: AtomicU64,
}

impl InjectionCounters {
    /// Fresh shared counters.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// True if the fault influenced the run in any way.
    pub fn activated(&self) -> bool {
        self.corrupted_values.load(Ordering::Relaxed) > 0
            || self.rerouted_blocks.load(Ordering::Relaxed) > 0
    }
}

/// Injects one [`FaultModel`] into a simulation.
#[derive(Debug)]
pub struct FaultInjector {
    model: FaultModel,
    counters: Arc<InjectionCounters>,
}

impl FaultInjector {
    /// Creates an injector reporting into `counters`.
    pub fn new(model: FaultModel, counters: Arc<InjectionCounters>) -> Self {
        Self { model, counters }
    }

    /// The injected model.
    pub fn model(&self) -> FaultModel {
        self.model
    }
}

impl FaultHook for FaultInjector {
    fn armed(&self, ctx: &FaultCtx) -> bool {
        // Exactly the predicate corrupt_value tests per lane: while the
        // fault window is closed the engine skips all 32 virtual calls.
        self.model.corrupts(ctx)
    }

    fn corrupt_value(&mut self, ctx: &FaultCtx, _lane: usize, value: u32) -> u32 {
        if self.model.corrupts(ctx) {
            self.counters
                .corrupted_values
                .fetch_add(1, Ordering::Relaxed);
            value ^ 1u32 << self.model.bit()
        } else {
            value
        }
    }

    fn reroute_block(
        &mut self,
        _kernel: KernelId,
        _block: u32,
        chosen_sm: usize,
        num_sms: usize,
        fits: &dyn Fn(usize) -> bool,
    ) -> usize {
        if let FaultModel::SchedulerMisroute { shift, from_cycle } = self.model {
            // The misroute manifests from a cycle on; the hook has no clock,
            // so `from_cycle == 0` means "always". Campaigns use 0.
            let _ = from_cycle;
            let target = (chosen_sm + shift) % num_sms;
            if fits(target) {
                self.counters
                    .rerouted_blocks
                    .fetch_add(1, Ordering::Relaxed);
                return target;
            }
        }
        chosen_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::isa::ExecUnit;

    fn ctx(sm: usize, cycle: u64) -> FaultCtx {
        FaultCtx {
            sm,
            cycle,
            kernel: KernelId(0),
            block: 0,
            warp: 0,
            pc: 0,
            unit: ExecUnit::Alu,
        }
    }

    #[test]
    fn flips_the_configured_bit_inside_the_window() {
        let counters = InjectionCounters::shared();
        let mut inj = FaultInjector::new(
            FaultModel::TransientSm {
                sm: 0,
                start: 10,
                duration: 10,
                bit: 4,
            },
            counters.clone(),
        );
        assert_eq!(inj.corrupt_value(&ctx(0, 15), 0, 0b0), 0b1_0000);
        assert_eq!(inj.corrupt_value(&ctx(0, 25), 0, 0b0), 0b0);
        assert_eq!(inj.corrupt_value(&ctx(1, 15), 0, 0b0), 0b0);
        assert!(counters.activated());
        assert_eq!(counters.corrupted_values.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn misroute_shifts_assignments_that_fit() {
        let counters = InjectionCounters::shared();
        let mut inj = FaultInjector::new(
            FaultModel::SchedulerMisroute {
                shift: 2,
                from_cycle: 0,
            },
            counters.clone(),
        );
        let sm = inj.reroute_block(KernelId(0), 0, 1, 6, &|_| true);
        assert_eq!(sm, 3);
        // When the target does not fit, the original stands.
        let sm = inj.reroute_block(KernelId(0), 1, 1, 6, &|s| s == 1);
        assert_eq!(sm, 1);
        assert_eq!(counters.rerouted_blocks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn armed_agrees_with_corruption_window() {
        let inj = FaultInjector::new(
            FaultModel::TransientSm {
                sm: 0,
                start: 10,
                duration: 10,
                bit: 4,
            },
            InjectionCounters::shared(),
        );
        assert!(inj.armed(&ctx(0, 15)));
        assert!(!inj.armed(&ctx(0, 25)), "window closed");
        assert!(!inj.armed(&ctx(1, 15)), "other SM");
    }

    #[test]
    fn inactive_fault_leaves_no_trace() {
        let counters = InjectionCounters::shared();
        let mut inj = FaultInjector::new(
            FaultModel::PermanentSm {
                sm: 5,
                from_cycle: 0,
                bit: 0,
            },
            counters.clone(),
        );
        assert_eq!(inj.corrupt_value(&ctx(2, 100), 0, 7), 7);
        assert!(!counters.activated());
    }
}
