//! Fault models for the common-cause-fault analysis of the paper.
//!
//! Each model corrupts values at one of the two architectural injection
//! points exposed by `higpu-sim` ([`higpu_sim::fault::FaultHook`]):
//! computation results, or the global scheduler's block placement.

use higpu_sim::fault::FaultCtx;

/// The fault universe considered in the paper's safety argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// A transient fault local to one SM: every value produced on `sm`
    /// during `[start, start+duration)` has `bit` flipped.
    TransientSm {
        /// Affected SM.
        sm: usize,
        /// First affected cycle.
        start: u64,
        /// Window length in cycles.
        duration: u64,
        /// Bit to flip.
        bit: u8,
    },
    /// A voltage droop — the canonical transient **common-cause fault**: the
    /// same corruption strikes *every* SM simultaneously during the window.
    /// Defeats plain redundancy when replicas execute the same computation
    /// at the same instant; defeated by temporal diversity.
    VoltageDroop {
        /// First affected cycle.
        start: u64,
        /// Window length in cycles.
        duration: u64,
        /// Bit to flip.
        bit: u8,
    },
    /// A permanent fault in one SM's datapath: every value produced on `sm`
    /// (from `from_cycle` on) has `bit` flipped. Defeats plain redundancy
    /// when both replicas of a block land on the faulty SM; defeated by
    /// spatial diversity.
    PermanentSm {
        /// Faulty SM.
        sm: usize,
        /// Cycle the defect manifests.
        from_cycle: u64,
        /// Stuck bit.
        bit: u8,
    },
    /// A fault in the global kernel scheduler: from `from_cycle` on, every
    /// block assignment is shifted to `(sm + shift) % num_sms`. Functionally
    /// silent — exactly the latent-diversity-loss fault of paper Sec. IV-C
    /// that the periodic scheduler self-test must reveal.
    SchedulerMisroute {
        /// Placement shift.
        shift: usize,
        /// Cycle the fault manifests.
        from_cycle: u64,
    },
}

impl FaultModel {
    /// True if this model corrupts values produced in context `ctx`.
    pub fn corrupts(&self, ctx: &FaultCtx) -> bool {
        match *self {
            FaultModel::TransientSm {
                sm,
                start,
                duration,
                ..
            } => ctx.sm == sm && ctx.cycle >= start && ctx.cycle < start + duration,
            FaultModel::VoltageDroop {
                start, duration, ..
            } => ctx.cycle >= start && ctx.cycle < start + duration,
            FaultModel::PermanentSm { sm, from_cycle, .. } => {
                ctx.sm == sm && ctx.cycle >= from_cycle
            }
            FaultModel::SchedulerMisroute { .. } => false,
        }
    }

    /// The first cycle at which this model can influence the run — before
    /// it, a trial's device state is bit-identical to a fault-free run of
    /// the same workload, which is what lets checkpointed campaigns
    /// fast-forward a trial to a recorded fault-free snapshot at or before
    /// this cycle and simulate only the corrupted suffix.
    ///
    /// Misroutes return 0: the injector reroutes block placements from the
    /// very first dispatch, so no prefix of a misroute trial is fault-free.
    pub fn arm_cycle(&self) -> u64 {
        match *self {
            FaultModel::TransientSm { start, .. } | FaultModel::VoltageDroop { start, .. } => start,
            FaultModel::PermanentSm { from_cycle, .. } => from_cycle,
            FaultModel::SchedulerMisroute { .. } => 0,
        }
    }

    /// The bit this model flips in corrupted values (0 for misroutes).
    pub fn bit(&self) -> u8 {
        match *self {
            FaultModel::TransientSm { bit, .. }
            | FaultModel::VoltageDroop { bit, .. }
            | FaultModel::PermanentSm { bit, .. } => bit,
            FaultModel::SchedulerMisroute { .. } => 0,
        }
    }

    /// True for common-cause faults (able to strike several redundant
    /// elements at once).
    pub fn is_common_cause(&self) -> bool {
        matches!(
            self,
            FaultModel::VoltageDroop { .. } | FaultModel::SchedulerMisroute { .. }
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultModel::TransientSm { .. } => "transient-sm",
            FaultModel::VoltageDroop { .. } => "voltage-droop",
            FaultModel::PermanentSm { .. } => "permanent-sm",
            FaultModel::SchedulerMisroute { .. } => "scheduler-misroute",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::isa::ExecUnit;
    use higpu_sim::kernel::KernelId;

    fn ctx(sm: usize, cycle: u64) -> FaultCtx {
        FaultCtx {
            sm,
            cycle,
            kernel: KernelId(0),
            block: 0,
            warp: 0,
            pc: 0,
            unit: ExecUnit::Alu,
        }
    }

    #[test]
    fn transient_is_bounded_in_space_and_time() {
        let f = FaultModel::TransientSm {
            sm: 2,
            start: 100,
            duration: 50,
            bit: 3,
        };
        assert!(f.corrupts(&ctx(2, 100)));
        assert!(f.corrupts(&ctx(2, 149)));
        assert!(!f.corrupts(&ctx(2, 150)), "window end is exclusive");
        assert!(!f.corrupts(&ctx(2, 99)));
        assert!(!f.corrupts(&ctx(3, 120)), "other SM untouched");
    }

    #[test]
    fn droop_hits_all_sms() {
        let f = FaultModel::VoltageDroop {
            start: 10,
            duration: 5,
            bit: 0,
        };
        for sm in 0..6 {
            assert!(f.corrupts(&ctx(sm, 12)));
        }
        assert!(!f.corrupts(&ctx(0, 15)));
        assert!(f.is_common_cause());
    }

    #[test]
    fn permanent_fault_never_heals() {
        let f = FaultModel::PermanentSm {
            sm: 1,
            from_cycle: 1000,
            bit: 7,
        };
        assert!(!f.corrupts(&ctx(1, 999)));
        assert!(f.corrupts(&ctx(1, 1000)));
        assert!(f.corrupts(&ctx(1, u64::MAX)));
        assert!(!f.corrupts(&ctx(0, 2000)));
        assert!(!f.is_common_cause());
    }

    #[test]
    fn arm_cycle_lower_bounds_every_corruption() {
        let transient = FaultModel::TransientSm {
            sm: 2,
            start: 100,
            duration: 50,
            bit: 3,
        };
        let droop = FaultModel::VoltageDroop {
            start: 10,
            duration: 5,
            bit: 0,
        };
        let permanent = FaultModel::PermanentSm {
            sm: 1,
            from_cycle: 1000,
            bit: 7,
        };
        assert_eq!(transient.arm_cycle(), 100);
        assert_eq!(droop.arm_cycle(), 10);
        assert_eq!(permanent.arm_cycle(), 1000);
        for f in [transient, droop, permanent] {
            for sm in 0..6 {
                for cycle in 0..f.arm_cycle() {
                    assert!(
                        !f.corrupts(&ctx(sm, cycle)),
                        "{f:?} corrupts before its arm cycle"
                    );
                }
            }
        }
        assert_eq!(
            FaultModel::SchedulerMisroute {
                shift: 1,
                from_cycle: 7,
            }
            .arm_cycle(),
            0,
            "misroutes shift placements from the first dispatch on"
        );
    }

    #[test]
    fn misroute_corrupts_no_values() {
        let f = FaultModel::SchedulerMisroute {
            shift: 1,
            from_cycle: 0,
        };
        assert!(!f.corrupts(&ctx(0, 0)));
        assert!(f.is_common_cause());
        assert_eq!(f.label(), "scheduler-misroute");
    }
}
