//! Fault-injection campaigns: inject randomized faults over many trials and
//! measure detection coverage per scheduling policy — the quantitative form
//! of the paper's safety argument.
//!
//! # Engine architecture
//!
//! Campaigns are the scalable outer loop every quantitative experiment runs
//! inside, so trial throughput is engineered for:
//!
//! * **Pre-drawn fault models** — all per-trial randomness is drawn from the
//!   seeded RNG *before* any trial runs ([`draw_models`]), making each trial
//!   a pure function of its [`FaultModel`]. Trials can then execute in any
//!   order on any worker without perturbing the campaign's statistics.
//! * **Reusable devices** — each worker owns one [`CampaignRunner`] whose
//!   GPU is rewound between trials with [`Gpu::reset`] (bump-allocator
//!   rewind + dirty-prefix zeroing) instead of reconstructing a multi-MB
//!   zeroed memory image per trial.
//! * **Deterministic reduction** — per-trial outcomes are order-independent
//!   counts, so the parallel [`run_campaign`] produces a [`CampaignReport`]
//!   bit-identical to [`run_campaign_serial`] for the same seed, at every
//!   worker count (enforced by tests).
//! * **FTTI-bounded trials** — corruption can send a kernel into a
//!   runaway loop (e.g. a loop counter's sign bit flipped turns a 16-pass
//!   loop into a 2³¹-iteration one). Each trial carries a cycle budget
//!   derived from the workload's fault-free makespan and its *declared*
//!   FTTI multiplier ([`ftti_deadline`],
//!   [`higpu_workloads::Workload::ftti_multiplier`]); blowing it is
//!   classified as [`TrialOutcome::Detected`] — exactly how the DCLS
//!   host's deadline monitor catches a hung replica within the FTTI
//!   (paper Sec. IV).
//! * **Replica-count axis** — [`CampaignSpec::replicas`] runs any
//!   registered workload at N ≥ 2 replicas; at N ≥ 3 the majority voter
//!   turns minority corruptions into [`TrialOutcome::Corrected`] trials,
//!   quantifying the coverage-vs-cost frontier of ASIL decomposition.

use crate::checkpoint::{record_reference, CheckpointConfig, ReferenceRun, SuffixReplayer};
use crate::injector::{FaultInjector, InjectionCounters};
use crate::model::FaultModel;
use crate::workload::{CampaignWorkload, RedundantWorkload};
use higpu_core::bist::scheduler_bist;
use higpu_core::diversity::{analyze, DiversityRequirements};
use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_core::safety_case::DetectionEvidence;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::{Gpu, SimError};
use higpu_telemetry::{CycleHistogram, EventKind, NO_SM};
use higpu_workloads::{Scale, WorkloadRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Family of faults a campaign injects; per-trial parameters (time, SM,
/// bit) are drawn from the campaign RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Transient single-SM upsets with the given window length.
    Transient {
        /// Window length in cycles.
        duration: u64,
    },
    /// Voltage droops (all SMs at once) with the given window length.
    Droop {
        /// Window length in cycles.
        duration: u64,
    },
    /// Permanent single-SM stuck-at faults.
    Permanent,
    /// Scheduler misrouting (latent diversity loss).
    Misroute,
}

impl FaultSpec {
    /// True for fault families that persist across re-execution — a retry
    /// re-encounters the same fault, so backward recovery can never repair
    /// them (only N ≥ 3 voting can). Transient-class families (upsets,
    /// droops) expire with their window and a funded retry must succeed.
    pub fn is_persistent(&self) -> bool {
        matches!(self, FaultSpec::Permanent)
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::Transient { .. } => "transient-sm",
            FaultSpec::Droop { .. } => "voltage-droop",
            FaultSpec::Permanent => "permanent-sm",
            FaultSpec::Misroute => "scheduler-misroute",
        }
    }
}

/// Classification of one injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The fault never corrupted anything (window missed execution).
    NotActivated,
    /// Corruption happened but the outputs were still correct and agreed.
    Masked,
    /// The replicas disagreed with no strict majority on some word (always
    /// the case for two replicas) — an *observable* fail-stop: the NMR
    /// monitor caught the fault within the FTTI and re-execution is
    /// triggered. A blown FTTI deadline also lands here.
    Detected,
    /// N ≥ 3 replicas disagreed, every disagreement was settled by a
    /// strict majority, and the voted output verified correct — the fault
    /// was *corrected* in place (forward recovery, zero re-execution
    /// rounds). Never produced by two-replica DCLS campaigns.
    Corrected,
    /// A wrong result the deployed safety mechanism would accept: either
    /// the replicas *agreed* on a wrong value, or (N ≥ 3) every
    /// disagreement was settled by a strict majority whose value was
    /// itself wrong — indistinguishable, at the voter, from a genuine
    /// correction, so execution silently continues with corrupted data.
    UndetectedFailure,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injection trials.
    pub trials: u32,
    /// RNG seed (campaigns are fully reproducible: the report is a pure
    /// function of this configuration, independent of worker count).
    pub seed: u64,
    /// GPU configuration (memory is the dominant per-trial cost; campaigns
    /// default to a small device image).
    pub gpu: GpuConfig,
    /// Worker threads for [`run_campaign`]. `0` (the default) resolves to
    /// the `HIGPU_WORKERS` environment variable if set, else to the number
    /// of available CPUs. Has no effect on the campaign's results — only on
    /// its wall-clock time.
    pub workers: usize,
    /// Checkpointed suffix-only replay (see [`crate::checkpoint`]):
    /// `Some` records one fault-free reference pass per campaign and
    /// fast-forwards every trial to the snapshot nearest before its fault
    /// arm cycle. Has no effect on the campaign's results — only on its
    /// wall-clock time — like `workers` (enforced by the determinism
    /// fences).
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        let mut gpu = GpuConfig::paper_6sm();
        gpu.global_mem_bytes = 2 * 1024 * 1024;
        Self {
            trials: 100,
            seed: 0xC0FFEE,
            gpu,
            workers: 0,
            checkpoint: None,
        }
    }
}

impl CampaignConfig {
    /// The effective worker count: an explicit `workers` wins, then a
    /// positive `HIGPU_WORKERS` environment variable, then the machine's
    /// available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        if let Some(n) = std::env::var("HIGPU_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// One cell of a campaign sweep: which workload, under which scheduling
/// policy, hit by which fault family — resolved against a
/// [`WorkloadRegistry`] instead of a hard-coded workload type, so any
/// registered benchmark can run in any mode under any policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Registry name of the workload under test.
    pub workload: String,
    /// Input scale the factory builds (campaigns default to the small
    /// fixed grids).
    pub scale: Scale,
    /// Scheduling policy of the redundant execution.
    pub policy: PolicyKind,
    /// Fault family injected.
    pub fault: FaultSpec,
    /// Replica count of the redundant execution (2 = the paper's DCLS, 3 =
    /// TMR with majority voting, …). SRRS spreads that many start SMs
    /// evenly; SLICE cuts that many SM slices; `Default` and `Half` are
    /// two-replica-only (see [`higpu_core::policy::PolicyKind::for_replicas`]).
    pub replicas: u8,
}

impl CampaignSpec {
    /// Campaign-scale, two-replica spec for `workload` under `policy` (the
    /// paper's configuration; use [`CampaignSpec::with_replicas`] for NMR).
    pub fn new(workload: impl Into<String>, policy: PolicyKind, fault: FaultSpec) -> Self {
        Self {
            workload: workload.into(),
            scale: Scale::Campaign,
            policy,
            fault,
            replicas: 2,
        }
    }

    /// The same spec at `replicas` replicas.
    pub fn with_replicas(mut self, replicas: u8) -> Self {
        self.replicas = replicas;
        self
    }

    /// The redundancy mode this spec requires on a GPU with `num_sms` SMs
    /// (SRRS start SMs evenly spread over the replica count).
    ///
    /// # Errors
    ///
    /// [`CampaignError::UnsupportedReplicas`] when the policy cannot run at
    /// the requested replica count (fewer than 2 replicas, `Half` at
    /// N ≠ 2).
    pub fn mode(&self, num_sms: usize) -> Result<RedundancyMode, CampaignError> {
        policy_mode(self.policy, self.replicas, num_sms)
    }

    /// Builds the workload from `reg`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::UnknownWorkload`] when the name is not registered.
    pub fn build_workload(
        &self,
        reg: &WorkloadRegistry,
    ) -> Result<CampaignWorkload, CampaignError> {
        CampaignWorkload::from_registry(reg, &self.workload, self.scale)
            .ok_or_else(|| CampaignError::UnknownWorkload(self.workload.clone()))
    }
}

/// Maps a scheduler policy at a replica count onto the
/// [`RedundancyMode`] that realizes it on a GPU with `num_sms` SMs — the
/// single mode-resolution rule shared by workload campaigns
/// ([`CampaignSpec::mode`]) and pipeline campaigns
/// (`higpu_pipeline::campaign`):
///
/// * `Default` — the uncontrolled COTS baseline at any N ≥ 2;
/// * `Srrs` — start SMs evenly spread over the replicas;
/// * `Half` — exactly two replicas (use SLICE above);
/// * `Slice` — plain concurrent slices;
/// * `SliceSkewed` — concurrent slices with the droop-aware default start
///   skew ([`RedundancyMode::slice_skewed_default`]).
///
/// # Errors
///
/// [`CampaignError::UnsupportedReplicas`] for fewer than two replicas or
/// `Half` at N ≠ 2.
pub fn policy_mode(
    policy: PolicyKind,
    replicas: u8,
    num_sms: usize,
) -> Result<RedundancyMode, CampaignError> {
    let unsupported = || CampaignError::UnsupportedReplicas { policy, replicas };
    if replicas < 2 {
        return Err(unsupported());
    }
    match policy {
        PolicyKind::Default => Ok(RedundancyMode::Uncontrolled { replicas }),
        PolicyKind::Srrs => Ok(RedundancyMode::srrs_spread(num_sms, replicas)),
        PolicyKind::Half => {
            if replicas == 2 {
                Ok(RedundancyMode::Half)
            } else {
                Err(unsupported())
            }
        }
        PolicyKind::Slice => Ok(RedundancyMode::slice(replicas)),
        PolicyKind::SliceSkewed => Ok(RedundancyMode::slice_skewed_default(replicas)),
    }
}

/// Errors of registry-driven campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// A trial failed in the redundancy protocol or the device.
    Redundancy(RedundancyError),
    /// The spec named a workload absent from the registry.
    UnknownWorkload(String),
    /// An execution layer above the plain campaign (e.g. the pipeline
    /// subsystem's frame calibration) failed in a way that has no
    /// campaign-level equivalent; the message carries the original error.
    Execution(String),
    /// The spec's policy cannot run at the requested replica count
    /// (HALF at N ≠ 2 — use SLICE, its N-replica form; every other
    /// policy, the uncontrolled baseline included, runs at any N ≥ 2).
    UnsupportedReplicas {
        /// The requested policy.
        policy: PolicyKind,
        /// The requested replica count.
        replicas: u8,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Redundancy(e) => write!(f, "{e}"),
            CampaignError::UnknownWorkload(name) => {
                write!(f, "workload '{name}' is not in the registry")
            }
            CampaignError::Execution(what) => write!(f, "execution failed: {what}"),
            CampaignError::UnsupportedReplicas { policy, replicas } => {
                write!(
                    f,
                    "policy {} does not support {replicas} replicas",
                    policy.label()
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<RedundancyError> for CampaignError {
    fn from(e: RedundancyError) -> Self {
        CampaignError::Redundancy(e)
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Workload name.
    pub workload: String,
    /// Scheduling policy label.
    pub policy: String,
    /// Fault family label.
    pub fault: &'static str,
    /// Replica count of the redundant execution.
    pub replicas: u8,
    /// Fault-free redundant makespan (cycles) measured by the dry run —
    /// the cost side of the coverage-vs-cost frontier, and the base of the
    /// per-trial FTTI deadline.
    pub fault_free_makespan: u64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose fault never activated.
    pub not_activated: u32,
    /// Activated but masked trials.
    pub masked: u32,
    /// Detected trials (re-execution required).
    pub detected: u32,
    /// Corrected trials: an N ≥ 3 majority outvoted the corruption and the
    /// voted output verified correct (always 0 for two replicas).
    pub corrected: u32,
    /// Undetected failures (must be 0 for diversity-enforcing policies).
    pub undetected: u32,
}

impl CampaignReport {
    /// Detection coverage over effective faults
    /// (detected + corrected + undetected) — a corrected trial counts as
    /// covered; `None` when no fault was effective.
    pub fn coverage(&self) -> Option<f64> {
        let effective = self.detected + self.corrected + self.undetected;
        if effective == 0 {
            None
        } else {
            Some(f64::from(self.detected + self.corrected) / f64::from(effective))
        }
    }

    /// Converts to the safety-case evidence form.
    pub fn evidence(&self) -> DetectionEvidence {
        DetectionEvidence {
            activated: u64::from(self.trials - self.not_activated),
            masked: u64::from(self.masked),
            detected: u64::from(self.detected),
            corrected: u64::from(self.corrected),
            // Plain (single-computation) campaigns have no re-execution
            // budget; recovery is a pipeline-campaign observable.
            recovered: 0,
            undetected_failures: u64::from(self.undetected),
        }
    }
}

/// Pre-draws the fault model of every trial from the campaign RNG.
///
/// Drawing **all** randomness up front decouples trial execution from the
/// RNG sequence: trial `i` is a pure function of `models[i]`, so trials can
/// run on any worker in any order while the campaign stays bit-reproducible.
/// The draw order matches the historical serial engine (one model per trial,
/// in trial order), so seeds recorded in older experiment artifacts keep
/// their meaning.
pub fn draw_models(cfg: &CampaignConfig, spec: FaultSpec, window_end: u64) -> Vec<FaultModel> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.trials)
        .map(|_| draw_model(&mut rng, spec, cfg.gpu.num_sms, window_end))
        .collect()
}

fn draw_model(rng: &mut StdRng, spec: FaultSpec, num_sms: usize, window_end: u64) -> FaultModel {
    let bit = rng.gen_range(0..32u8);
    match spec {
        FaultSpec::Transient { duration } => FaultModel::TransientSm {
            sm: rng.gen_range(0..num_sms),
            start: rng.gen_range(0..window_end.max(1)),
            duration,
            bit,
        },
        FaultSpec::Droop { duration } => FaultModel::VoltageDroop {
            start: rng.gen_range(0..window_end.max(1)),
            duration,
            bit,
        },
        FaultSpec::Permanent => FaultModel::PermanentSm {
            sm: rng.gen_range(0..num_sms),
            from_cycle: rng.gen_range(0..window_end.max(1)),
            bit,
        },
        FaultSpec::Misroute => FaultModel::SchedulerMisroute {
            shift: rng.gen_range(1..num_sms),
            from_cycle: 0,
        },
    }
}

/// Measures the fault-free makespan of the workload under `mode` (used to
/// sample fault times inside the execution window).
///
/// # Errors
///
/// Propagates workload/protocol errors.
pub fn dry_run_makespan(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
) -> Result<u64, RedundancyError> {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let mut exec = RedundantExecutor::new(&mut gpu, mode.clone())?;
    workload.run(&mut exec)?;
    drop(exec);
    Ok(gpu.trace().makespan().unwrap_or(0))
}

/// The per-trial FTTI deadline: the workload's declared budget multiplier
/// ([`higpu_workloads::Workload::ftti_multiplier`]) times its fault-free
/// makespan, plus fixed slack. Legitimate corrupted-but-terminating runs
/// (extra divergence, a few perturbed loop trips) stay below it; a runaway
/// loop (counter sign-flip → ~2³¹ iterations) blows it promptly and is
/// classified as detected by the deadline monitor. Pure function of the
/// makespan and multiplier, so serial and parallel engines agree.
pub fn ftti_deadline(fault_free_makespan: u64, ftti_multiplier: u64) -> u64 {
    higpu_core::ftti::deadline(fault_free_makespan, ftti_multiplier)
}

/// The historical flat watchdog budget: [`ftti_deadline`] at the default
/// FTTI multiplier. Campaign engines now use the per-workload form.
pub fn watchdog_deadline(fault_free_makespan: u64) -> u64 {
    ftti_deadline(
        fault_free_makespan,
        higpu_workloads::DEFAULT_FTTI_MULTIPLIER,
    )
}

/// True when `model` provably cannot activate in a run whose fault-free
/// makespan is `fault_free_makespan` — the campaign-level trivial-trial
/// fast path: such a trial classifies [`TrialOutcome::NotActivated`]
/// without simulating anything.
///
/// Holds only for the window-limited value-corruption models
/// ([`FaultModel::TransientSm`], [`FaultModel::VoltageDroop`]): their
/// corruption window `[arm, arm+duration)` opens **strictly after** the
/// last instruction of the fault-free run (which issues *at* the makespan
/// cycle — `arm == makespan` can still corrupt it, so the bound is strict,
/// mirroring the suffix replayer's `arm > segment end` rule). A fault that
/// never corrupts leaves the run bit-identical to the fault-free reference:
/// it terminates at the recorded makespan with `activated == false`.
///
/// The `deadline` guard covers callers with a watchdog tighter than the
/// fault-free makespan itself (never the case for [`ftti_deadline`]-derived
/// budgets): such a run would be deadline-cut and classified `Detected`, so
/// it is not trivial.
///
/// Permanent-SM and scheduler-misroute models are never trivial here: their
/// effect is not bounded by an arm window in the same way (quarantine and
/// diversity analysis still run), so they always simulate.
pub fn trivially_not_activated(
    model: FaultModel,
    fault_free_makespan: u64,
    deadline: Option<u64>,
) -> bool {
    match model {
        FaultModel::TransientSm { .. } | FaultModel::VoltageDroop { .. } => {
            model.arm_cycle() > fault_free_makespan
                && deadline.is_none_or(|d| fault_free_makespan <= d)
        }
        FaultModel::PermanentSm { .. } | FaultModel::SchedulerMisroute { .. } => false,
    }
}

/// The synthesized [`TrialObservables`] of a trivially-skipped trial (see
/// [`trivially_not_activated`]): the run ends at the fault-free makespan,
/// nothing activated, nothing was cut, and — since no simulation ran — no
/// snapshot restores were performed (checkpointed engines honestly report
/// the replay work they *saved*).
fn trivial_observables(model: FaultModel, fault_free_makespan: u64) -> TrialObservables {
    TrialObservables {
        end_cycle: fault_free_makespan,
        arm_cycle: model.arm_cycle(),
        activated: false,
        deadline_cut: false,
        restores: 0,
        restore_skipped_cycles: 0,
    }
}

/// Order-independent accumulator of trial outcomes; summing per-worker
/// accumulators is the campaign's deterministic reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct OutcomeCounts {
    not_activated: u32,
    masked: u32,
    detected: u32,
    corrected: u32,
    undetected: u32,
}

impl OutcomeCounts {
    fn add(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::NotActivated => self.not_activated += 1,
            TrialOutcome::Masked => self.masked += 1,
            TrialOutcome::Detected => self.detected += 1,
            TrialOutcome::Corrected => self.corrected += 1,
            TrialOutcome::UndetectedFailure => self.undetected += 1,
        }
    }

    fn merge(&mut self, other: OutcomeCounts) {
        self.not_activated += other.not_activated;
        self.masked += other.masked;
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.undetected += other.undetected;
    }
}

/// Cycle-domain observables of one trial, reported alongside the outcome
/// by [`CampaignRunner::run_trial_observed`]. Every field is simulated
/// state — no wall time — so per-trial observables are bit-identical
/// across engines, worker counts and checkpointing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialObservables {
    /// Device clock when the trial ended (makespan, or the cut cycle for
    /// deadline-cut trials).
    pub end_cycle: u64,
    /// The fault model's arm cycle ([`FaultModel::arm_cycle`]).
    pub arm_cycle: u64,
    /// True if the injected fault corrupted at least one value/placement.
    pub activated: bool,
    /// True if the watchdog cut the trial at its FTTI deadline.
    pub deadline_cut: bool,
    /// Snapshot restores performed during the trial (checkpointed replay).
    pub restores: u64,
    /// Cycles those restores fast-forwarded over (simulation work skipped).
    pub restore_skipped_cycles: u64,
}

/// Cycle-domain telemetry aggregated over a campaign's trials.
///
/// Collected by every engine with plain field updates (fixed-size arrays —
/// no allocation, no wall time) and merged across workers with the
/// order-independent [`CycleHistogram::merge`], so the aggregate is
/// bit-identical at every worker count. Deliberately **not** part of
/// [`CampaignReport`]: reports are the determinism fence and stay exactly
/// as comparable as before.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignTelemetry {
    /// End cycles of all trials (deadline-cut trials end at the cut).
    pub makespans: CycleHistogram,
    /// Fault-arm → detection latency of [`TrialOutcome::Detected`] trials.
    pub detection_latency: CycleHistogram,
    /// End cycles of activated trials that terminated on their own (the
    /// corrupted-but-terminating distribution FTTI budget mining needs).
    pub corrupted_terminating: CycleHistogram,
    /// Snapshot restores across all trials.
    pub restores: u64,
    /// Cycles those restores fast-forwarded over.
    pub restore_skipped_cycles: u64,
}

impl CampaignTelemetry {
    /// Folds `other` in; element-wise, so any merge order over the same
    /// trial set yields the same aggregate.
    pub fn merge(&mut self, other: &Self) {
        self.makespans.merge(&other.makespans);
        self.detection_latency.merge(&other.detection_latency);
        self.corrupted_terminating
            .merge(&other.corrupted_terminating);
        self.restores += other.restores;
        self.restore_skipped_cycles += other.restore_skipped_cycles;
    }

    fn record(&mut self, outcome: TrialOutcome, obs: TrialObservables) {
        self.makespans.record(obs.end_cycle);
        if outcome == TrialOutcome::Detected {
            self.detection_latency
                .record(obs.end_cycle.saturating_sub(obs.arm_cycle));
        }
        if obs.activated && !obs.deadline_cut {
            self.corrupted_terminating.record(obs.end_cycle);
        }
        self.restores += obs.restores;
        self.restore_skipped_cycles += obs.restore_skipped_cycles;
    }
}

/// Deterministic simulation-side cost of a campaign (wall-clock-free, so it
/// is identical for serial and parallel runs; throughput benches divide it
/// by their own timers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignPerf {
    /// Dynamic warp instructions simulated across all trials.
    pub sim_instructions: u64,
    /// GPU cycles simulated across all trials.
    pub sim_cycles: u64,
}

impl CampaignPerf {
    fn merge(&mut self, other: CampaignPerf) {
        self.sim_instructions += other.sim_instructions;
        self.sim_cycles += other.sim_cycles;
    }
}

/// A reusable trial executor: owns one GPU that is rewound with
/// [`Gpu::reset`] between trials instead of being reconstructed (the seed
/// engine re-zeroed a multi-MB memory image per trial).
///
/// Each campaign worker owns one runner; a runner is also useful on its own
/// for bisecting a single interesting fault model.
#[derive(Debug)]
pub struct CampaignRunner {
    cfg: CampaignConfig,
    gpu: Gpu,
    perf: CampaignPerf,
}

impl CampaignRunner {
    /// Creates a runner with a fresh device per `cfg.gpu`.
    pub fn new(cfg: &CampaignConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            gpu: Gpu::new(cfg.gpu.clone()),
            perf: CampaignPerf::default(),
        }
    }

    /// Simulation cost accumulated over all trials run so far.
    pub fn perf(&self) -> CampaignPerf {
        self.perf
    }

    /// The runner's device — trace recorders drain its telemetry ring
    /// after a trial (the ring is cleared by the next trial's reset).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Runs one injection trial of `model`; returns the outcome.
    ///
    /// The trial result is a pure function of `(cfg.gpu, mode, workload,
    /// model)` — independent of previous trials on this runner and of which
    /// runner executes it.
    ///
    /// # Errors
    ///
    /// Propagates workload/protocol errors
    /// ([`higpu_sim::gpu::SimError::Stalled`] cannot be caused by value
    /// corruption, only by policy bugs).
    pub fn run_trial(
        &mut self,
        mode: &RedundancyMode,
        workload: &dyn RedundantWorkload,
        model: FaultModel,
    ) -> Result<TrialOutcome, RedundancyError> {
        self.run_trial_with_deadline(mode, workload, model, None)
    }

    /// Like [`CampaignRunner::run_trial`], with a watchdog cycle budget: if
    /// the corrupted run has not completed by `deadline` cycles, the trial
    /// is classified as [`TrialOutcome::Detected`] (the DCLS host's
    /// deadline monitor catches the hung replica — a timing violation is a
    /// detection, not an error). Campaign engines pass
    /// [`watchdog_deadline`] of the fault-free makespan here so no trial
    /// can stall a campaign.
    ///
    /// # Errors
    ///
    /// Propagates workload/protocol errors other than the watchdog cutoff.
    pub fn run_trial_with_deadline(
        &mut self,
        mode: &RedundancyMode,
        workload: &dyn RedundantWorkload,
        model: FaultModel,
        deadline: Option<u64>,
    ) -> Result<TrialOutcome, RedundancyError> {
        self.run_trial_observed(mode, workload, model, deadline, None)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`CampaignRunner::run_trial_with_deadline`], replaying only the
    /// corrupted suffix: reference segments ending before the fault's arm
    /// cycle are skipped by restoring their recorded snapshots (see
    /// [`crate::checkpoint`]). The outcome is bit-identical to the
    /// from-zero trial of the same model.
    ///
    /// # Errors
    ///
    /// Propagates workload/protocol errors other than the watchdog cutoff.
    pub fn run_trial_checkpointed(
        &mut self,
        mode: &RedundancyMode,
        workload: &dyn RedundantWorkload,
        model: FaultModel,
        deadline: Option<u64>,
        reference: &ReferenceRun,
    ) -> Result<TrialOutcome, RedundancyError> {
        self.run_trial_observed(mode, workload, model, deadline, Some(reference))
            .map(|(outcome, _)| outcome)
    }

    /// The general trial form: runs one injection trial (checkpointed iff
    /// `reference` is given) and returns the outcome together with its
    /// cycle-domain [`TrialObservables`]. The outcome is exactly what the
    /// convenience wrappers return; the observables feed
    /// [`CampaignTelemetry`] and are pure simulated state.
    ///
    /// # Errors
    ///
    /// Propagates workload/protocol errors other than the watchdog cutoff.
    pub fn run_trial_observed(
        &mut self,
        mode: &RedundancyMode,
        workload: &dyn RedundantWorkload,
        model: FaultModel,
        deadline: Option<u64>,
        reference: Option<&ReferenceRun>,
    ) -> Result<(TrialOutcome, TrialObservables), RedundancyError> {
        // A trial that errored mid-flight (e.g. a watchdog cutoff) leaves
        // the device non-idle; discard the dead in-flight work and rewind
        // in place — reconstructing the multi-MB image would reintroduce
        // the very cost the reusable runner exists to avoid.
        if self.gpu.reset().is_err() {
            self.gpu.force_reset();
        }
        let gpu = &mut self.gpu;
        gpu.set_cycle_limit(deadline);
        let counters = InjectionCounters::shared();
        gpu.set_fault_hook(Box::new(FaultInjector::new(model, counters.clone())));
        let fault_sm = match model {
            FaultModel::TransientSm { sm, .. } | FaultModel::PermanentSm { sm, .. } => sm as u32,
            FaultModel::VoltageDroop { .. } | FaultModel::SchedulerMisroute { .. } => NO_SM,
        };
        gpu.record_event(
            EventKind::FaultArmed,
            model.arm_cycle(),
            fault_sm,
            0,
            u64::from(model.bit()),
        );

        let outcome = (|| -> Result<TrialOutcome, RedundancyError> {
            let verdict = {
                let mut exec = RedundantExecutor::new(gpu, mode.clone())?;
                if let Some(reference) = reference {
                    exec.set_sync_hook(Box::new(SuffixReplayer::new(reference, model)));
                }
                workload.run(&mut exec)?
            };

            if let FaultModel::SchedulerMisroute { .. } = model {
                // Misroutes are functionally silent; detection is the job of
                // the diversity monitor + periodic scheduler self-test
                // (Sec. IV-C).
                if !counters.activated() {
                    return Ok(TrialOutcome::NotActivated);
                }
                let diversity_ok =
                    analyze(gpu.trace(), DiversityRequirements::default()).is_diverse();
                let bist = scheduler_bist(gpu, mode.clone(), 2 * self.cfg.gpu.num_sms as u32)?;
                return Ok(if !bist.passed() || !diversity_ok {
                    TrialOutcome::Detected
                } else {
                    TrialOutcome::UndetectedFailure
                });
            }

            Ok(if !counters.activated() {
                TrialOutcome::NotActivated
            } else if !verdict.matched {
                if verdict.corrected {
                    TrialOutcome::Corrected
                } else if verdict.fully_voted {
                    // Clean strict majority on every word, wrong voted
                    // value: the deployed voter cannot tell this from a
                    // genuine correction — it continues with corrupted
                    // data and never triggers recovery. Classifying by the
                    // voter's observables, not the campaign's oracle.
                    TrialOutcome::UndetectedFailure
                } else {
                    TrialOutcome::Detected
                }
            } else if verdict.correct {
                TrialOutcome::Masked
            } else {
                TrialOutcome::UndetectedFailure
            })
        })();
        // Watchdog cutoff is a *classification*, not a failure: the DCLS
        // deadline monitor detected a hung replica.
        let (outcome, deadline_cut) = match outcome {
            Err(RedundancyError::Sim(SimError::DeadlineExceeded { .. })) => {
                (Ok(TrialOutcome::Detected), true)
            }
            other => (other, false),
        };
        let stats = self.gpu.stats();
        self.perf.sim_instructions += stats.instructions;
        self.perf.sim_cycles += stats.cycles;
        let outcome = outcome?;
        let obs = TrialObservables {
            end_cycle: self.gpu.cycle(),
            arm_cycle: model.arm_cycle(),
            activated: counters.activated(),
            deadline_cut,
            restores: self.gpu.restore_count(),
            restore_skipped_cycles: self.gpu.restore_skipped_cycles(),
        };
        if outcome == TrialOutcome::Detected {
            self.gpu.record_event(
                EventKind::FaultDetected,
                obs.end_cycle,
                fault_sm,
                0,
                obs.end_cycle.saturating_sub(obs.arm_cycle),
            );
        }
        Ok((outcome, obs))
    }

    /// [`CampaignRunner::run_trial_observed`] behind the trivial-trial fast
    /// path: a model that [`trivially_not_activated`] proves inert for
    /// `fault_free_makespan` classifies [`TrialOutcome::NotActivated`] with
    /// synthesized observables and **no simulation at all** (no device
    /// reset, no replica runs, no replay); every other model runs the full
    /// trial. Campaign engines call this with the makespan of their
    /// reference pass — outcome and observables are bit-identical to the
    /// simulated trial of the same model.
    ///
    /// # Errors
    ///
    /// As [`CampaignRunner::run_trial_observed`].
    pub fn run_trial_observed_with_makespan(
        &mut self,
        mode: &RedundancyMode,
        workload: &dyn RedundantWorkload,
        model: FaultModel,
        deadline: Option<u64>,
        reference: Option<&ReferenceRun>,
        fault_free_makespan: u64,
    ) -> Result<(TrialOutcome, TrialObservables), RedundancyError> {
        if trivially_not_activated(model, fault_free_makespan, deadline) {
            return Ok((
                TrialOutcome::NotActivated,
                trivial_observables(model, fault_free_makespan),
            ));
        }
        self.run_trial_observed(mode, workload, model, deadline, reference)
    }
}

/// Runs one injection trial on a freshly constructed device; returns the
/// outcome. Convenience wrapper over [`CampaignRunner::run_trial`].
///
/// # Errors
///
/// Propagates workload/protocol errors ([`higpu_sim::gpu::SimError::Stalled`]
/// cannot be caused by value corruption, only by policy bugs).
pub fn run_trial(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
    model: FaultModel,
) -> Result<TrialOutcome, RedundancyError> {
    CampaignRunner::new(cfg).run_trial(mode, workload, model)
}

/// Largest chunk one claim may take — bounds the tail imbalance when one
/// worker's trials happen to run long.
const MAX_CLAIM: usize = 64;

/// Claims the next chunk of trial indices from the shared cursor (also
/// used by the pipeline campaign engine in `higpu_pipeline`, which mirrors
/// this worker pool).
///
/// Guided self-scheduling: each claim takes `remaining / (2 * workers)`
/// trials (clamped to `1..=MAX_CLAIM`), so claims are large while plenty of
/// work remains — a handful of atomic operations instead of one per trial —
/// and shrink toward single trials near the end for a balanced finish.
/// Chunking only changes *which worker* runs a trial, never the result:
/// per-trial outcomes are order-independent counts, so the campaign report
/// stays bit-identical at every worker count.
pub fn claim_chunk(
    next: &AtomicUsize,
    total: usize,
    workers: usize,
) -> Option<std::ops::Range<usize>> {
    loop {
        let cur = next.load(Ordering::Relaxed);
        if cur >= total {
            return None;
        }
        let remaining = total - cur;
        let chunk = (remaining / (2 * workers.max(1))).clamp(1, MAX_CLAIM);
        if next
            .compare_exchange_weak(cur, cur + chunk, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return Some(cur..cur + chunk);
        }
        // Lost the race; re-read the cursor and retry.
    }
}

fn empty_report(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
    fault_free_makespan: u64,
) -> CampaignReport {
    CampaignReport {
        workload: workload.name().to_string(),
        policy: mode.policy_kind().label().to_string(),
        fault: spec.label(),
        replicas: mode.replicas(),
        fault_free_makespan,
        trials: cfg.trials,
        not_activated: 0,
        masked: 0,
        detected: 0,
        corrected: 0,
        undetected: 0,
    }
}

fn finish_report(mut report: CampaignReport, counts: OutcomeCounts) -> CampaignReport {
    report.not_activated = counts.not_activated;
    report.masked = counts.masked;
    report.detected = counts.detected;
    report.corrected = counts.corrected;
    report.undetected = counts.undetected;
    report
}

/// The campaign's reference pass and fault window, resolved per
/// `cfg.checkpoint`: either a recorded [`ReferenceRun`] (whose makespan is
/// bit-identical to the dry run's — checkpoint pauses are transparent) or
/// a plain [`dry_run_makespan`]. Factored out so the serial and parallel
/// engines derive the window, deadline and models identically.
fn prepare_reference(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
) -> Result<(Option<ReferenceRun>, u64), RedundancyError> {
    match cfg.checkpoint {
        Some(ck) => {
            let reference = record_reference(cfg, mode, workload, ck.stride)?;
            let makespan = reference.makespan();
            Ok((Some(reference), makespan))
        }
        None => Ok((None, dry_run_makespan(cfg, mode, workload)?)),
    }
}

/// The reference serial engine: one freshly constructed device per trial,
/// trials in draw order. Kept as the oracle the parallel engine is checked
/// against (and as the baseline of the `campaign_throughput` bench).
///
/// # Errors
///
/// Propagates workload/protocol errors from any trial.
pub fn run_campaign_serial(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<CampaignReport, RedundancyError> {
    let (reference, window_end) = prepare_reference(cfg, mode, workload)?;
    let deadline = Some(ftti_deadline(window_end, workload.ftti_multiplier()));
    let models = draw_models(cfg, spec, window_end);
    let mut counts = OutcomeCounts::default();
    for model in models {
        if trivially_not_activated(model, window_end, deadline) {
            counts.add(TrialOutcome::NotActivated);
            continue;
        }
        let mut runner = CampaignRunner::new(cfg);
        counts.add(match &reference {
            Some(r) => runner.run_trial_checkpointed(mode, workload, model, deadline, r)?,
            None => runner.run_trial_with_deadline(mode, workload, model, deadline)?,
        });
    }
    Ok(finish_report(
        empty_report(cfg, mode, spec, workload, window_end),
        counts,
    ))
}

/// Runs a full campaign — `cfg.trials` randomized injections of `spec` into
/// `workload` under `mode` — on a pool of [`CampaignConfig::resolved_workers`]
/// threads, returning the report together with the simulated cost.
///
/// The report is bit-identical to [`run_campaign_serial`] for the same
/// configuration, at every worker count: all randomness is pre-drawn and the
/// reduction is a sum of order-independent counts.
///
/// # Errors
///
/// Propagates workload/protocol errors; when several trials fail, the error
/// of the lowest-numbered trial is returned (deterministic across worker
/// interleavings).
pub fn run_campaign_with_perf(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<(CampaignReport, CampaignPerf), RedundancyError> {
    run_campaign_engine(cfg, mode, spec, workload).map(|(report, perf, _)| (report, perf))
}

/// [`run_campaign_with_perf`] plus the campaign's [`CampaignTelemetry`].
/// The report is untouched by the telemetry collection (same engine, same
/// trials — telemetry is observation, not state), and the telemetry itself
/// is bit-identical at every worker count.
///
/// # Errors
///
/// As [`run_campaign_with_perf`].
pub fn run_campaign_with_telemetry(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<(CampaignReport, CampaignTelemetry), RedundancyError> {
    run_campaign_engine(cfg, mode, spec, workload).map(|(report, _, telemetry)| (report, telemetry))
}

fn run_campaign_engine(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<(CampaignReport, CampaignPerf, CampaignTelemetry), RedundancyError> {
    let (reference, window_end) = prepare_reference(cfg, mode, workload)?;
    let reference = reference.as_ref();
    let deadline = Some(ftti_deadline(window_end, workload.ftti_multiplier()));
    let models = draw_models(cfg, spec, window_end);
    let report = empty_report(cfg, mode, spec, workload, window_end);
    let workers = cfg.resolved_workers().min(models.len()).max(1);

    if workers == 1 {
        // In-thread fast path: still one reusable device for all trials.
        let mut runner = CampaignRunner::new(cfg);
        let mut counts = OutcomeCounts::default();
        let mut telemetry = CampaignTelemetry::default();
        for model in models {
            let (outcome, obs) = runner.run_trial_observed_with_makespan(
                mode, workload, model, deadline, reference, window_end,
            )?;
            counts.add(outcome);
            telemetry.record(outcome, obs);
        }
        return Ok((finish_report(report, counts), runner.perf(), telemetry));
    }

    // Worker pool over pre-drawn models: a shared cursor hands out *chunks*
    // of trial indices (guided self-scheduling, see [`claim_chunk`]) so
    // sub-millisecond trials do not serialize on one atomic operation per
    // trial; each worker accumulates order-independent counts. The abort
    // flag stops surviving workers promptly once any trial errors (the run
    // is doomed either way, so skipped trials are unobservable).
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    type WorkerOk = (OutcomeCounts, CampaignPerf, CampaignTelemetry);
    let results: Vec<Result<WorkerOk, (usize, RedundancyError)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let models = &models;
                let next = &next;
                let abort = &abort;
                scope.spawn(move || {
                    let mut runner = CampaignRunner::new(cfg);
                    let mut counts = OutcomeCounts::default();
                    let mut telemetry = CampaignTelemetry::default();
                    'claims: while !abort.load(Ordering::Relaxed) {
                        let Some(range) = claim_chunk(next, models.len(), workers) else {
                            break;
                        };
                        for i in range {
                            if abort.load(Ordering::Relaxed) {
                                break 'claims;
                            }
                            let trial = runner.run_trial_observed_with_makespan(
                                mode, workload, models[i], deadline, reference, window_end,
                            );
                            match trial {
                                Ok((outcome, obs)) => {
                                    counts.add(outcome);
                                    telemetry.record(outcome, obs);
                                }
                                Err(e) => {
                                    abort.store(true, Ordering::Relaxed);
                                    return Err((i, e));
                                }
                            }
                        }
                    }
                    Ok((counts, runner.perf(), telemetry))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });

    let mut counts = OutcomeCounts::default();
    let mut perf = CampaignPerf::default();
    let mut telemetry = CampaignTelemetry::default();
    let mut first_error: Option<(usize, RedundancyError)> = None;
    for r in results {
        match r {
            Ok((c, p, t)) => {
                counts.merge(c);
                perf.merge(p);
                telemetry.merge(&t);
            }
            Err((i, e)) => {
                if first_error.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_error = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok((finish_report(report, counts), perf, telemetry))
}

/// Runs a full campaign: `cfg.trials` randomized injections of `spec` into
/// `workload` under `mode`, parallelized over
/// [`CampaignConfig::resolved_workers`] threads. See
/// [`run_campaign_with_perf`] for the engine's determinism contract.
///
/// # Errors
///
/// Propagates workload/protocol errors from any trial.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<CampaignReport, RedundancyError> {
    run_campaign_with_perf(cfg, mode, spec, workload).map(|(report, _)| report)
}

/// Runs a campaign described by a [`CampaignSpec`], resolving the workload
/// from `reg`: any registered workload, in redundant mode, under any
/// scheduler policy. Parallelized (see [`run_campaign_with_perf`] for the
/// determinism contract).
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] for unregistered names; otherwise
/// propagates workload/protocol errors from any trial.
pub fn run_campaign_selected(
    cfg: &CampaignConfig,
    reg: &WorkloadRegistry,
    spec: &CampaignSpec,
) -> Result<CampaignReport, CampaignError> {
    let workload = spec.build_workload(reg)?;
    let mode = spec.mode(cfg.gpu.num_sms)?;
    Ok(run_campaign(cfg, &mode, spec.fault, &workload)?)
}

/// [`run_campaign_selected`] plus the campaign's [`CampaignTelemetry`]
/// (cycle-domain distributions the report's outcome counts cannot express).
///
/// # Errors
///
/// As [`run_campaign_selected`].
pub fn run_campaign_selected_with_telemetry(
    cfg: &CampaignConfig,
    reg: &WorkloadRegistry,
    spec: &CampaignSpec,
) -> Result<(CampaignReport, CampaignTelemetry), CampaignError> {
    let workload = spec.build_workload(reg)?;
    let mode = spec.mode(cfg.gpu.num_sms)?;
    Ok(run_campaign_with_telemetry(
        cfg, &mode, spec.fault, &workload,
    )?)
}

/// Serial reference form of [`run_campaign_selected`] (one fresh device per
/// trial, trials in draw order) — the oracle the parallel engine is checked
/// against.
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] for unregistered names; otherwise
/// propagates workload/protocol errors from any trial.
pub fn run_campaign_selected_serial(
    cfg: &CampaignConfig,
    reg: &WorkloadRegistry,
    spec: &CampaignSpec,
) -> Result<CampaignReport, CampaignError> {
    let workload = spec.build_workload(reg)?;
    let mode = spec.mode(cfg.gpu.num_sms)?;
    Ok(run_campaign_serial(cfg, &mode, spec.fault, &workload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::IteratedFma;

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    fn small_workload() -> IteratedFma {
        IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 16,
        }
    }

    #[test]
    fn permanent_fault_never_defeats_srrs() {
        let cfg = small_cfg(12);
        let mode = RedundancyMode::srrs_default(6);
        let r =
            run_campaign(&cfg, &mode, FaultSpec::Permanent, &small_workload()).expect("campaign");
        assert_eq!(r.undetected, 0, "spatial diversity defeats stuck-at: {r:?}");
        assert!(r.detected > 0, "permanent faults must strike: {r:?}");
    }

    #[test]
    fn permanent_fault_defeats_uncontrolled_redundancy() {
        // Deterministic COTS placement puts both replicas of block i on the
        // same SM → identical corruption → undetected failures.
        let cfg = small_cfg(12);
        let mode = RedundancyMode::uncontrolled();
        let r =
            run_campaign(&cfg, &mode, FaultSpec::Permanent, &small_workload()).expect("campaign");
        assert!(
            r.undetected > 0,
            "uncontrolled redundancy must show undetected failures: {r:?}"
        );
    }

    #[test]
    fn droop_never_defeats_srrs() {
        let cfg = small_cfg(12);
        let mode = RedundancyMode::srrs_default(6);
        let r = run_campaign(
            &cfg,
            &mode,
            FaultSpec::Droop { duration: 500 },
            &small_workload(),
        )
        .expect("campaign");
        assert_eq!(r.undetected, 0, "temporal diversity defeats droops: {r:?}");
    }

    #[test]
    fn misroute_is_detected_by_bist_under_srrs() {
        let cfg = small_cfg(3);
        let mode = RedundancyMode::srrs_default(6);
        let r =
            run_campaign(&cfg, &mode, FaultSpec::Misroute, &small_workload()).expect("campaign");
        assert_eq!(r.detected, 3, "every misroute caught: {r:?}");
        assert_eq!(r.undetected, 0);
    }

    #[test]
    fn parallel_report_is_bit_identical_to_serial_across_worker_counts() {
        let mut cfg = small_cfg(10);
        let mode = RedundancyMode::srrs_default(6);
        let spec = FaultSpec::Transient { duration: 300 };
        let serial = run_campaign_serial(&cfg, &mode, spec, &small_workload()).expect("serial");
        assert_eq!(
            serial.trials,
            serial.not_activated
                + serial.masked
                + serial.detected
                + serial.corrected
                + serial.undetected,
            "every trial classified: {serial:?}"
        );
        for workers in [1usize, 2, 8] {
            cfg.workers = workers;
            let parallel = run_campaign(&cfg, &mode, spec, &small_workload())
                .unwrap_or_else(|e| panic!("parallel at {workers} workers: {e}"));
            assert_eq!(
                parallel, serial,
                "report must not depend on workers={workers}"
            );
        }
    }

    #[test]
    fn checkpointed_reports_are_bit_identical_to_from_zero_across_worker_counts() {
        // The full determinism fence: for every fault family, the report is
        // a pure function of (seed, trials, gpu, mode, spec, workload) —
        // independent of the worker count AND of whether trials replay from
        // checkpoints or run from cycle zero.
        let mode = RedundancyMode::srrs_default(6);
        let wl = small_workload();
        for spec in [
            FaultSpec::Transient { duration: 300 },
            FaultSpec::Droop { duration: 200 },
            FaultSpec::Permanent,
            FaultSpec::Misroute,
        ] {
            let trials = if spec == FaultSpec::Misroute { 3 } else { 8 };
            let cfg = small_cfg(trials);
            let oracle = run_campaign_serial(&cfg, &mode, spec, &wl).expect("from-zero serial");
            for stride in [500u64, 4096] {
                let mut ck_cfg = CampaignConfig {
                    checkpoint: Some(CheckpointConfig { stride }),
                    ..cfg.clone()
                };
                let serial =
                    run_campaign_serial(&ck_cfg, &mode, spec, &wl).expect("checkpointed serial");
                assert_eq!(
                    serial, oracle,
                    "checkpointed serial must match from-zero ({spec:?}, stride {stride})"
                );
                for workers in [1usize, 2, 8] {
                    ck_cfg.workers = workers;
                    let parallel =
                        run_campaign(&ck_cfg, &mode, spec, &wl).expect("checkpointed parallel");
                    assert_eq!(
                        parallel, oracle,
                        "checkpointed report must not depend on workers={workers} \
                         ({spec:?}, stride {stride})"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpointed_trial_matches_from_zero_for_adversarial_arm_cycles() {
        // Trial-level fence at hand-picked arm cycles the random draw is
        // unlikely to hit: segment boundaries (the strict-skip edge), cycle
        // 0, one past a checkpoint, and past the makespan entirely.
        let cfg = small_cfg(1);
        let mode = RedundancyMode::srrs_default(6);
        let wl = small_workload();
        let stride = 700u64;
        let reference = record_reference(&cfg, &mode, &wl, stride).expect("reference");
        let makespan = reference.makespan();
        assert_eq!(
            makespan,
            dry_run_makespan(&cfg, &mode, &wl).expect("dry run"),
            "checkpoint pauses must not perturb the reference makespan"
        );
        let deadline = Some(ftti_deadline(
            makespan,
            RedundantWorkload::ftti_multiplier(&wl),
        ));
        let arms = [
            0,
            1,
            stride,
            stride + 1,
            makespan / 2,
            makespan - 1,
            makespan,
            makespan + 1,
            makespan * 4,
        ];
        for arm in arms {
            for model in [
                FaultModel::TransientSm {
                    sm: 1,
                    start: arm,
                    duration: 400,
                    bit: 30,
                },
                FaultModel::VoltageDroop {
                    start: arm,
                    duration: 150,
                    bit: 12,
                },
                FaultModel::PermanentSm {
                    sm: 0,
                    from_cycle: arm,
                    bit: 7,
                },
            ] {
                let from_zero = CampaignRunner::new(&cfg)
                    .run_trial_with_deadline(&mode, &wl, model, deadline)
                    .expect("from-zero trial");
                let replayed = CampaignRunner::new(&cfg)
                    .run_trial_checkpointed(&mode, &wl, model, deadline, &reference)
                    .expect("checkpointed trial");
                assert_eq!(replayed, from_zero, "arm {arm}, model {model:?}");
            }
        }
    }

    #[test]
    fn checkpointed_deadline_cuts_classify_like_the_watchdog() {
        // A dormant fault beyond the makespan: every segment is skipped,
        // and the skip must reproduce the watchdog's exceed-iff-end>limit
        // rule — Detected under an impossible deadline, NotActivated
        // without one.
        let cfg = small_cfg(1);
        let mode = RedundancyMode::srrs_default(6);
        let wl = small_workload();
        let reference = record_reference(&cfg, &mode, &wl, 4096).expect("reference");
        let dormant = FaultModel::TransientSm {
            sm: 0,
            start: u64::MAX,
            duration: 1,
            bit: 0,
        };
        let mut runner = CampaignRunner::new(&cfg);
        let cut = runner
            .run_trial_checkpointed(&mode, &wl, dormant, Some(1), &reference)
            .expect("cutoff is a classification");
        assert_eq!(cut, TrialOutcome::Detected);
        let free = runner
            .run_trial_checkpointed(&mode, &wl, dormant, None, &reference)
            .expect("runs");
        assert_eq!(free, TrialOutcome::NotActivated);
        assert!(
            reference.segments() > 0 && reference.approx_bytes() > 0,
            "reference pass must have recorded snapshots"
        );
    }

    #[test]
    fn predrawn_models_match_serial_draw_order() {
        let cfg = small_cfg(32);
        let spec = FaultSpec::Permanent;
        let models = draw_models(&cfg, spec, 5000);
        // Drawing again yields the same sequence (pure function of the seed).
        assert_eq!(models, draw_models(&cfg, spec, 5000));
        assert_eq!(models.len(), 32);
        // And an incremental draw from the same seed agrees element-wise.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for (i, &m) in models.iter().enumerate() {
            assert_eq!(
                m,
                draw_model(&mut rng, spec, cfg.gpu.num_sms, 5000),
                "trial {i}"
            );
        }
    }

    #[test]
    fn runner_reuse_matches_fresh_device_trials() {
        let cfg = small_cfg(6);
        let mode = RedundancyMode::srrs_default(6);
        let wl = small_workload();
        let window = dry_run_makespan(&cfg, &mode, &wl).expect("dry run");
        let models = draw_models(&cfg, FaultSpec::Transient { duration: 400 }, window);
        let mut runner = CampaignRunner::new(&cfg);
        for (i, &model) in models.iter().enumerate() {
            let reused = runner.run_trial(&mode, &wl, model).expect("reused");
            let fresh = run_trial(&cfg, &mode, &wl, model).expect("fresh");
            assert_eq!(
                reused,
                fresh,
                "trial {i} must not see residue from trial {}",
                i.max(1) - 1
            );
        }
        let perf = runner.perf();
        assert!(perf.sim_instructions > 0 && perf.sim_cycles > 0);
    }

    #[test]
    fn blown_watchdog_deadline_classifies_as_detected() {
        let cfg = small_cfg(1);
        let mode = RedundancyMode::srrs_default(6);
        let wl = small_workload();
        // A fault that never fires: any outcome difference is purely the
        // watchdog's.
        let dormant = FaultModel::TransientSm {
            sm: 0,
            start: u64::MAX,
            duration: 1,
            bit: 0,
        };
        let mut runner = CampaignRunner::new(&cfg);
        let cut = runner
            .run_trial_with_deadline(&mode, &wl, dormant, Some(1))
            .expect("cutoff is a classification, not an error");
        assert_eq!(cut, TrialOutcome::Detected, "deadline monitor detects");
        let free = runner.run_trial(&mode, &wl, dormant).expect("runs");
        assert_eq!(free, TrialOutcome::NotActivated, "no watchdog, no fault");
    }

    #[test]
    fn watchdog_deadline_scales_with_makespan() {
        assert_eq!(watchdog_deadline(0), 10_000);
        assert_eq!(watchdog_deadline(1_000), 18_000);
        assert_eq!(watchdog_deadline(u64::MAX), u64::MAX, "saturates");
        // The per-workload form honors the declared multiplier and matches
        // the historical flat budget at the default.
        assert_eq!(ftti_deadline(1_000, 8), watchdog_deadline(1_000));
        assert_eq!(ftti_deadline(1_000, 2), 12_000);
        assert_eq!(ftti_deadline(u64::MAX, 3), u64::MAX, "saturates");
    }

    /// A workload whose declared FTTI multiplier is so tight that the
    /// deadline fires on a *fault-free* corrupted run — proving the
    /// campaign engine takes the budget from the workload, not a flat
    /// constant.
    #[derive(Debug)]
    struct TightFtti(IteratedFma);

    impl higpu_workloads::Workload for TightFtti {
        fn name(&self) -> &'static str {
            "tight_ftti"
        }
        fn run(
            &self,
            s: &mut dyn higpu_workloads::GpuSession,
        ) -> Result<Vec<u32>, higpu_workloads::SessionError> {
            higpu_workloads::Workload::run(&self.0, s)
        }
        fn reference(&self) -> Vec<u32> {
            higpu_workloads::Workload::reference(&self.0)
        }
        fn tolerance(&self) -> higpu_workloads::Tolerance {
            higpu_workloads::Workload::tolerance(&self.0)
        }
        fn ftti_multiplier(&self) -> u64 {
            0 // deadline = fixed slack only
        }
    }

    #[test]
    fn campaign_enforces_the_workload_declared_ftti_budget() {
        let cfg = small_cfg(4);
        let mode = RedundancyMode::srrs_default(6);
        // Long enough that the redundant makespan exceeds the 10k-cycle
        // fixed slack left by a zero multiplier.
        let inner = IteratedFma {
            n: 512,
            threads_per_block: 64,
            iters: 48,
        };
        let makespan = dry_run_makespan(
            &cfg,
            &mode,
            &crate::workload::CampaignWorkload::new(Box::new(TightFtti(inner.clone()))),
        )
        .expect("dry run");
        assert!(
            makespan > 10_000,
            "workload must outlive the tight budget ({makespan} cycles)"
        );

        let tight = crate::workload::CampaignWorkload::new(Box::new(TightFtti(inner.clone())));
        assert_eq!(RedundantWorkload::ftti_multiplier(&tight), 0);
        let r = run_campaign(&cfg, &mode, FaultSpec::Transient { duration: 1 }, &tight)
            .expect("campaign");
        assert_eq!(
            r.detected, r.trials,
            "every trial blows the tight FTTI deadline: {r:?}"
        );
        assert_eq!(r.fault_free_makespan, makespan);

        // The same workload under the default budget completes normally.
        let relaxed = crate::workload::CampaignWorkload::new(Box::new(inner));
        let r = run_campaign(&cfg, &mode, FaultSpec::Transient { duration: 1 }, &relaxed)
            .expect("campaign");
        assert!(
            r.detected < r.trials,
            "default budget leaves fault-free-window trials unharmed: {r:?}"
        );
    }

    #[test]
    fn claim_chunks_cover_every_trial_exactly_once_and_shrink() {
        let next = AtomicUsize::new(0);
        let total = 500;
        let workers = 4;
        let mut covered = vec![0u32; total];
        let mut sizes = Vec::new();
        while let Some(range) = claim_chunk(&next, total, workers) {
            sizes.push(range.len());
            for i in range {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "exact cover, no overlap");
        assert_eq!(sizes.first(), Some(&62), "500 / (2*4) = 62 up front");
        assert_eq!(sizes.last(), Some(&1), "single trials at the tail");
        assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "guided chunks never grow: {sizes:?}"
        );
        // A huge backlog is capped so no worker hoards the queue.
        let next = AtomicUsize::new(0);
        let first = claim_chunk(&next, 1_000_000, 1).expect("work");
        assert_eq!(first.len(), MAX_CLAIM);
    }

    #[test]
    fn selected_campaign_resolves_workload_and_policy_from_registry() {
        let mut reg = WorkloadRegistry::new();
        higpu_workloads::synthetic::register(&mut reg);
        let cfg = small_cfg(6);
        let spec = CampaignSpec::new("iterated_fma", PolicyKind::Srrs, FaultSpec::Permanent);
        let serial = run_campaign_selected_serial(&cfg, &reg, &spec).expect("serial");
        let parallel = run_campaign_selected(&cfg, &reg, &spec).expect("parallel");
        assert_eq!(parallel, serial, "selected engines agree bit-for-bit");
        assert_eq!(parallel.workload, "iterated_fma");
        assert_eq!(parallel.policy, "SRRS");
        assert_eq!(parallel.undetected, 0);

        let unknown = CampaignSpec::new("no_such", PolicyKind::Half, FaultSpec::Permanent);
        assert_eq!(
            run_campaign_selected(&cfg, &reg, &unknown).expect_err("unknown"),
            CampaignError::UnknownWorkload("no_such".into())
        );
    }

    #[test]
    fn spec_policy_maps_to_matching_mode() {
        let spec = |p| CampaignSpec::new("w", p, FaultSpec::Permanent);
        assert_eq!(
            spec(PolicyKind::Default).mode(6),
            Ok(RedundancyMode::uncontrolled())
        );
        assert_eq!(
            spec(PolicyKind::Srrs).mode(6),
            Ok(RedundancyMode::srrs_default(6))
        );
        assert_eq!(spec(PolicyKind::Half).mode(6), Ok(RedundancyMode::Half));
        assert_eq!(
            spec(PolicyKind::Slice).mode(6),
            Ok(RedundancyMode::slice(2))
        );
        assert_eq!(
            spec(PolicyKind::SliceSkewed).mode(6),
            Ok(RedundancyMode::slice_skewed_default(2))
        );
        // The replicas axis.
        assert_eq!(
            spec(PolicyKind::Srrs).with_replicas(3).mode(6),
            Ok(RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4]
            })
        );
        assert_eq!(
            spec(PolicyKind::Slice).with_replicas(3).mode(6),
            Ok(RedundancyMode::slice(3))
        );
        assert_eq!(
            spec(PolicyKind::Half).with_replicas(3).mode(6),
            Err(CampaignError::UnsupportedReplicas {
                policy: PolicyKind::Half,
                replicas: 3
            }),
            "HALF is two-replica by construction; SLICE is its N-form"
        );
        assert_eq!(
            spec(PolicyKind::Default).with_replicas(3).mode(6),
            Ok(RedundancyMode::Uncontrolled { replicas: 3 }),
            "the GPGPU-SIM baseline column exists at every replica count"
        );
        assert_eq!(
            spec(PolicyKind::Srrs).with_replicas(1).mode(6),
            Err(CampaignError::UnsupportedReplicas {
                policy: PolicyKind::Srrs,
                replicas: 1
            })
        );
    }

    #[test]
    fn tmr_campaign_corrects_what_dcls_merely_detects() {
        let cfg = small_cfg(12);
        let wl = small_workload();
        let spec = FaultSpec::Permanent;
        let dcls = run_campaign(&cfg, &RedundancyMode::srrs_default(6), spec, &wl).expect("dcls");
        let tmr = run_campaign(&cfg, &RedundancyMode::srrs_spread(6, 3), spec, &wl).expect("tmr");
        assert_eq!(dcls.corrected, 0, "2 replicas can never outvote: {dcls:?}");
        assert_eq!(dcls.replicas, 2);
        assert_eq!(tmr.replicas, 3);
        assert!(
            tmr.corrected > 0,
            "TMR must outvote single-SM stuck-ats: {tmr:?}"
        );
        assert_eq!(tmr.undetected, 0, "spatial diversity holds at N=3: {tmr:?}");
        assert!(
            tmr.fault_free_makespan > dcls.fault_free_makespan,
            "a third serialized replica costs makespan: {} vs {}",
            tmr.fault_free_makespan,
            dcls.fault_free_makespan
        );
    }

    #[test]
    fn worker_resolution_precedence() {
        let cfg = CampaignConfig {
            workers: 3,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.resolved_workers(), 3, "explicit count wins");
        let auto = CampaignConfig::default();
        assert!(auto.resolved_workers() >= 1);
    }

    #[test]
    fn coverage_and_evidence_shapes() {
        let r = CampaignReport {
            workload: "w".into(),
            policy: "SRRS".into(),
            fault: "permanent-sm",
            replicas: 3,
            fault_free_makespan: 12_345,
            trials: 10,
            not_activated: 2,
            masked: 1,
            detected: 3,
            corrected: 4,
            undetected: 0,
        };
        assert_eq!(r.coverage(), Some(1.0), "corrected trials are covered");
        let e = r.evidence();
        assert_eq!(e.activated, 8);
        assert_eq!(e.detected, 3);
        assert_eq!(e.corrected, 4);
        assert_eq!(e.undetected_failures, 0);
        assert_eq!(e.coverage(), Some(1.0));
    }
}
