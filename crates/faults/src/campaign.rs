//! Fault-injection campaigns: inject randomized faults over many trials and
//! measure detection coverage per scheduling policy — the quantitative form
//! of the paper's safety argument.

use crate::injector::{FaultInjector, InjectionCounters};
use crate::model::FaultModel;
use crate::workload::RedundantWorkload;
use higpu_core::bist::scheduler_bist;
use higpu_core::diversity::{analyze, DiversityRequirements};
use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_core::safety_case::DetectionEvidence;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Family of faults a campaign injects; per-trial parameters (time, SM,
/// bit) are drawn from the campaign RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Transient single-SM upsets with the given window length.
    Transient {
        /// Window length in cycles.
        duration: u64,
    },
    /// Voltage droops (all SMs at once) with the given window length.
    Droop {
        /// Window length in cycles.
        duration: u64,
    },
    /// Permanent single-SM stuck-at faults.
    Permanent,
    /// Scheduler misrouting (latent diversity loss).
    Misroute,
}

impl FaultSpec {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::Transient { .. } => "transient-sm",
            FaultSpec::Droop { .. } => "voltage-droop",
            FaultSpec::Permanent => "permanent-sm",
            FaultSpec::Misroute => "scheduler-misroute",
        }
    }
}

/// Classification of one injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The fault never corrupted anything (window missed execution).
    NotActivated,
    /// Corruption happened but the outputs were still correct and agreed.
    Masked,
    /// The replicas disagreed — the DCLS compare caught the fault.
    Detected,
    /// The replicas agreed on a *wrong* result — a safety failure.
    UndetectedFailure,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injection trials.
    pub trials: u32,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// GPU configuration (memory is the dominant per-trial cost; campaigns
    /// default to a small device image).
    pub gpu: GpuConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        let mut gpu = GpuConfig::paper_6sm();
        gpu.global_mem_bytes = 2 * 1024 * 1024;
        Self {
            trials: 100,
            seed: 0xC0FFEE,
            gpu,
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Workload name.
    pub workload: String,
    /// Scheduling policy label.
    pub policy: String,
    /// Fault family label.
    pub fault: &'static str,
    /// Trials run.
    pub trials: u32,
    /// Trials whose fault never activated.
    pub not_activated: u32,
    /// Activated but masked trials.
    pub masked: u32,
    /// Detected trials.
    pub detected: u32,
    /// Undetected failures (must be 0 for diversity-enforcing policies).
    pub undetected: u32,
}

impl CampaignReport {
    /// Detection coverage over effective faults (detected + undetected);
    /// `None` when no fault was effective.
    pub fn coverage(&self) -> Option<f64> {
        let effective = self.detected + self.undetected;
        if effective == 0 {
            None
        } else {
            Some(f64::from(self.detected) / f64::from(effective))
        }
    }

    /// Converts to the safety-case evidence form.
    pub fn evidence(&self) -> DetectionEvidence {
        DetectionEvidence {
            activated: u64::from(self.trials - self.not_activated),
            masked: u64::from(self.masked),
            detected: u64::from(self.detected),
            undetected_failures: u64::from(self.undetected),
        }
    }
}

fn draw_model(
    rng: &mut StdRng,
    spec: FaultSpec,
    num_sms: usize,
    window_end: u64,
) -> FaultModel {
    let bit = rng.gen_range(0..32u8);
    match spec {
        FaultSpec::Transient { duration } => FaultModel::TransientSm {
            sm: rng.gen_range(0..num_sms),
            start: rng.gen_range(0..window_end.max(1)),
            duration,
            bit,
        },
        FaultSpec::Droop { duration } => FaultModel::VoltageDroop {
            start: rng.gen_range(0..window_end.max(1)),
            duration,
            bit,
        },
        FaultSpec::Permanent => FaultModel::PermanentSm {
            sm: rng.gen_range(0..num_sms),
            from_cycle: rng.gen_range(0..window_end.max(1)),
            bit,
        },
        FaultSpec::Misroute => FaultModel::SchedulerMisroute {
            shift: rng.gen_range(1..num_sms),
            from_cycle: 0,
        },
    }
}

/// Measures the fault-free makespan of the workload under `mode` (used to
/// sample fault times inside the execution window).
///
/// # Errors
///
/// Propagates workload/protocol errors.
pub fn dry_run_makespan(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
) -> Result<u64, RedundancyError> {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let mut exec = RedundantExecutor::new(&mut gpu, mode.clone())?;
    workload.run(&mut exec)?;
    Ok(gpu.trace().makespan().unwrap_or(0))
}

/// Runs one injection trial; returns the outcome.
///
/// # Errors
///
/// Propagates workload/protocol errors ([`higpu_sim::gpu::SimError::Stalled`]
/// cannot be caused by value corruption, only by policy bugs).
pub fn run_trial(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
    model: FaultModel,
) -> Result<TrialOutcome, RedundancyError> {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let counters = InjectionCounters::shared();
    gpu.set_fault_hook(Box::new(FaultInjector::new(model, counters.clone())));

    let verdict = {
        let mut exec = RedundantExecutor::new(&mut gpu, mode.clone())?;
        workload.run(&mut exec)?
    };

    if let FaultModel::SchedulerMisroute { .. } = model {
        // Misroutes are functionally silent; detection is the job of the
        // diversity monitor + periodic scheduler self-test (Sec. IV-C).
        if !counters.activated() {
            return Ok(TrialOutcome::NotActivated);
        }
        let diversity_ok = analyze(gpu.trace(), DiversityRequirements::default()).is_diverse();
        let bist = scheduler_bist(&mut gpu, mode.clone(), 2 * cfg.gpu.num_sms as u32)?;
        return Ok(if !bist.passed() || !diversity_ok {
            TrialOutcome::Detected
        } else {
            TrialOutcome::UndetectedFailure
        });
    }

    Ok(if !counters.activated() {
        TrialOutcome::NotActivated
    } else if !verdict.matched {
        TrialOutcome::Detected
    } else if verdict.correct {
        TrialOutcome::Masked
    } else {
        TrialOutcome::UndetectedFailure
    })
}

/// Runs a full campaign: `cfg.trials` randomized injections of `spec` into
/// `workload` under `mode`.
///
/// # Errors
///
/// Propagates workload/protocol errors from any trial.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    spec: FaultSpec,
    workload: &dyn RedundantWorkload,
) -> Result<CampaignReport, RedundancyError> {
    let window_end = dry_run_makespan(cfg, mode, workload)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = CampaignReport {
        workload: workload.name().to_string(),
        policy: mode.policy_kind().label().to_string(),
        fault: spec.label(),
        trials: cfg.trials,
        not_activated: 0,
        masked: 0,
        detected: 0,
        undetected: 0,
    };
    for _ in 0..cfg.trials {
        let model = draw_model(&mut rng, spec, cfg.gpu.num_sms, window_end);
        match run_trial(cfg, mode, workload, model)? {
            TrialOutcome::NotActivated => report.not_activated += 1,
            TrialOutcome::Masked => report.masked += 1,
            TrialOutcome::Detected => report.detected += 1,
            TrialOutcome::UndetectedFailure => report.undetected += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::IteratedFma;

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    fn small_workload() -> IteratedFma {
        IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 16,
        }
    }

    #[test]
    fn permanent_fault_never_defeats_srrs() {
        let cfg = small_cfg(12);
        let mode = RedundancyMode::srrs_default(6);
        let r = run_campaign(&cfg, &mode, FaultSpec::Permanent, &small_workload())
            .expect("campaign");
        assert_eq!(r.undetected, 0, "spatial diversity defeats stuck-at: {r:?}");
        assert!(r.detected > 0, "permanent faults must strike: {r:?}");
    }

    #[test]
    fn permanent_fault_defeats_uncontrolled_redundancy() {
        // Deterministic COTS placement puts both replicas of block i on the
        // same SM → identical corruption → undetected failures.
        let cfg = small_cfg(12);
        let mode = RedundancyMode::Uncontrolled;
        let r = run_campaign(&cfg, &mode, FaultSpec::Permanent, &small_workload())
            .expect("campaign");
        assert!(
            r.undetected > 0,
            "uncontrolled redundancy must show undetected failures: {r:?}"
        );
    }

    #[test]
    fn droop_never_defeats_srrs() {
        let cfg = small_cfg(12);
        let mode = RedundancyMode::srrs_default(6);
        let r = run_campaign(
            &cfg,
            &mode,
            FaultSpec::Droop { duration: 500 },
            &small_workload(),
        )
        .expect("campaign");
        assert_eq!(r.undetected, 0, "temporal diversity defeats droops: {r:?}");
    }

    #[test]
    fn misroute_is_detected_by_bist_under_srrs() {
        let cfg = small_cfg(3);
        let mode = RedundancyMode::srrs_default(6);
        let r = run_campaign(&cfg, &mode, FaultSpec::Misroute, &small_workload())
            .expect("campaign");
        assert_eq!(r.detected, 3, "every misroute caught: {r:?}");
        assert_eq!(r.undetected, 0);
    }

    #[test]
    fn coverage_and_evidence_shapes() {
        let r = CampaignReport {
            workload: "w".into(),
            policy: "SRRS".into(),
            fault: "permanent-sm",
            trials: 10,
            not_activated: 2,
            masked: 3,
            detected: 5,
            undetected: 0,
        };
        assert_eq!(r.coverage(), Some(1.0));
        let e = r.evidence();
        assert_eq!(e.activated, 8);
        assert_eq!(e.detected, 5);
        assert_eq!(e.undetected_failures, 0);
    }
}
