//! Campaign workloads: adapters classifying any [`Workload`] run under
//! fault injection.
//!
//! A campaign workload runs a complete redundant computation and reports
//! (a) whether the replicas agreed and (b) whether the agreed output was
//! actually correct with respect to the workload's reference — the
//! distinction between *detected* faults and *undetected failures*.
//!
//! This module used to carry its own workload implementations driving a
//! [`RedundantExecutor`] by hand; it is now an adapter over the unified
//! workload layer (`higpu_workloads`), so **any** registered workload —
//! every Rodinia benchmark included — can run inside a fault campaign.

use higpu_core::redundancy::{RedundancyError, RedundantExecutor};
use higpu_workloads::runner::run_redundant;
use higpu_workloads::{Scale, SessionError, Workload, WorkloadRegistry};

pub use higpu_workloads::synthetic::IteratedFma;

/// Outcome of one redundant workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadVerdict {
    /// Replicas agreed bitwise (the NMR safety mechanism is always an
    /// exact word-for-word compare/vote).
    pub matched: bool,
    /// The (voted) output verified against the workload's reference,
    /// **under the workload's own tolerance**. This is deliberate: for
    /// float benchmarks verified with [`higpu_workloads::Tolerance::approx`],
    /// corruption that stays inside the benchmark's accepted numerical
    /// envelope is functionally indistinguishable from legitimate rounding
    /// variation and classifies as *masked*, not as a silent failure.
    /// Bitwise-deterministic workloads (e.g.
    /// [`IteratedFma`], integer benchmarks) use
    /// [`higpu_workloads::Tolerance::Exact`], where any agreed-upon
    /// corruption is an undetected failure.
    pub correct: bool,
    /// The replicas disagreed but every disagreement was settled by a
    /// strict majority — the *observable* the deployed NMR voter has
    /// (it cannot see whether the majority value is right). Always
    /// `false` for two replicas (a 2-replica disagreement can never reach
    /// a strict majority).
    pub fully_voted: bool,
    /// `fully_voted` **and** the voted output verified correct: NMR
    /// forward recovery that was actually safe — the computation could
    /// continue without re-execution. A fully-voted-but-wrong run
    /// (`fully_voted && !corrected`) is the dangerous case: the deployed
    /// voter sees a clean majority, continues with corrupted data, and
    /// never triggers recovery — campaigns classify it as an *undetected
    /// failure*, exactly like an all-replica agreement on a wrong value.
    pub corrected: bool,
}

/// A workload that can be executed redundantly under fault injection.
///
/// `Sync` because campaign workers share one workload description across
/// threads (each worker drives its own private GPU; the workload itself is
/// immutable configuration).
pub trait RedundantWorkload: Sync {
    /// Workload name for reports.
    fn name(&self) -> &str;

    /// Runs the full redundant computation (allocate, copy, launch, sync,
    /// compare/vote) and classifies the outputs.
    ///
    /// # Errors
    ///
    /// Propagates [`RedundancyError`] from the protocol.
    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError>;

    /// The workload's FTTI budget multiplier (see
    /// [`higpu_workloads::Workload::ftti_multiplier`]); campaign engines
    /// derive each trial's watchdog deadline from it.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::DEFAULT_FTTI_MULTIPLIER
    }
}

/// Runs any session-level [`Workload`] redundantly (mismatch-tolerant, so
/// the host program completes even when a fault desynchronized the
/// replicas) and classifies the outcome.
///
/// # Errors
///
/// Propagates device/protocol errors from the workload.
pub fn classify_redundant_run(
    workload: &dyn Workload,
    exec: &mut RedundantExecutor<'_>,
) -> Result<WorkloadVerdict, RedundancyError> {
    match run_redundant(exec, workload) {
        Ok(run) => {
            let correct = workload.verify(&run.output).is_ok();
            Ok(WorkloadVerdict {
                matched: run.matched(),
                correct,
                fully_voted: run.fully_corrected(),
                corrected: run.fully_corrected() && correct,
            })
        }
        Err(SessionError::Sim(e)) => Err(RedundancyError::Sim(e)),
        Err(SessionError::Redundancy(e)) => Err(e),
        // Tolerant sessions never surface this; treat it as detected-and-
        // wrong if a custom workload raises it anyway.
        Err(SessionError::ReplicaMismatch { .. }) => Ok(WorkloadVerdict {
            matched: false,
            correct: false,
            fully_voted: false,
            corrected: false,
        }),
    }
}

impl RedundantWorkload for IteratedFma {
    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError> {
        classify_redundant_run(self, exec)
    }

    fn ftti_multiplier(&self) -> u64 {
        Workload::ftti_multiplier(self)
    }
}

/// Adapter running any boxed [`Workload`] (typically built from a
/// [`WorkloadRegistry`]) as a campaign workload.
#[derive(Debug)]
pub struct CampaignWorkload {
    inner: Box<dyn Workload>,
}

impl CampaignWorkload {
    /// Wraps a workload.
    pub fn new(inner: Box<dyn Workload>) -> Self {
        Self { inner }
    }

    /// Builds the named workload from `reg` at `scale`; `None` for unknown
    /// names.
    pub fn from_registry(reg: &WorkloadRegistry, name: &str, scale: Scale) -> Option<Self> {
        reg.build(name, scale).map(Self::new)
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &dyn Workload {
        &*self.inner
    }
}

impl RedundantWorkload for CampaignWorkload {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError> {
        classify_redundant_run(&*self.inner, exec)
    }

    fn ftti_multiplier(&self) -> u64 {
        self.inner.ftti_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn fault_free_run_matches_and_is_correct() {
        let wl = IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let v = RedundantWorkload::run(&wl, &mut exec).expect("runs");
        assert!(v.matched);
        assert!(v.correct, "GPU FMA must equal host mul_add bitwise");
    }

    #[test]
    fn registry_built_workload_runs_redundantly() {
        let mut reg = WorkloadRegistry::new();
        higpu_workloads::synthetic::register(&mut reg);
        let wl = CampaignWorkload::from_registry(&reg, "iterated_fma", Scale::Campaign)
            .expect("registered");
        assert_eq!(RedundantWorkload::name(&wl), "iterated_fma");
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let v = wl.run(&mut exec).expect("runs");
        assert!(v.matched && v.correct);
    }

    #[test]
    fn corrupted_replica_is_classified_as_mismatch() {
        use crate::injector::{FaultInjector, InjectionCounters};
        use crate::model::FaultModel;
        // A permanent stuck-at on SM 0 corrupts different blocks in each
        // replica (SRRS places the same block on different SMs), so the
        // replicas must disagree and replica 0's output must be wrong.
        let wl = IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let counters = InjectionCounters::shared();
        gpu.set_fault_hook(Box::new(FaultInjector::new(
            FaultModel::PermanentSm {
                sm: 0,
                from_cycle: 0,
                bit: 30,
            },
            counters.clone(),
        )));
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let v = classify_redundant_run(&wl, &mut exec).expect("runs to completion");
        assert!(counters.activated(), "the stuck-at must strike");
        assert!(!v.matched, "replicas diverge under asymmetric corruption");
        assert!(!v.correct, "replica 0 ran through the faulty SM");
    }
}
