//! Built-in redundant workloads for fault-injection campaigns.
//!
//! A campaign workload runs a complete redundant computation and reports
//! (a) whether the replicas agreed and (b) whether the agreed output was
//! actually correct with respect to a host-computed golden reference — the
//! distinction between *detected* faults and *undetected failures*.

use higpu_core::redundancy::{Comparison, RParam, RedundancyError, RedundantExecutor};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::program::Program;
use std::sync::Arc;

/// Outcome of one redundant workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadVerdict {
    /// Replicas agreed bitwise.
    pub matched: bool,
    /// Replica 0's output equalled the golden reference.
    pub correct: bool,
}

/// A workload that can be executed redundantly under fault injection.
///
/// `Sync` because campaign workers share one workload description across
/// threads (each worker drives its own private GPU; the workload itself is
/// immutable configuration).
pub trait RedundantWorkload: Sync {
    /// Workload name for reports.
    fn name(&self) -> &str;

    /// Runs the full redundant computation (allocate, copy, launch, sync,
    /// compare) and classifies the outputs.
    ///
    /// # Errors
    ///
    /// Propagates [`RedundancyError`] from the protocol.
    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError>;
}

/// An iterated fused-multiply-add over a vector:
/// `y[i] ← y[i]*0.5 + x[i]`, repeated `iters` times per element.
///
/// The iteration count stretches the kernel's execution window so transient
/// fault windows have something to hit; the arithmetic is bitwise
/// deterministic so the golden comparison is exact.
#[derive(Debug, Clone)]
pub struct IteratedFma {
    /// Elements.
    pub n: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// FMA iterations per element.
    pub iters: u32,
}

impl Default for IteratedFma {
    fn default() -> Self {
        Self {
            n: 1024,
            threads_per_block: 128,
            iters: 64,
        }
    }
}

impl IteratedFma {
    /// Builds the kernel program.
    pub fn program(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("iterated_fma");
        let x = b.param(0);
        let y = b.param(1);
        let n = b.param(2);
        let i = b.global_tid_x();
        let in_range = b.isetp(higpu_sim::isa::CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let xa = b.addr_w(x, i);
            let ya = b.addr_w(y, i);
            let xv = b.ldg(xa, 0);
            let acc = b.ldg(ya, 0);
            b.for_range(0u32, self.iters, 1u32, |b, _k| {
                b.ffma_to(acc, acc, 0.5f32, xv);
            });
            b.stg(ya, 0, acc);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Deterministic inputs.
    pub fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..self.n).map(|i| (i % 97) as f32 * 0.125 + 1.0).collect();
        let y: Vec<f32> = (0..self.n).map(|i| (i % 13) as f32 * 0.5).collect();
        (x, y)
    }

    /// Host-side golden reference (bitwise identical arithmetic).
    pub fn golden(&self) -> Vec<f32> {
        let (x, mut y) = self.inputs();
        for i in 0..self.n as usize {
            for _ in 0..self.iters {
                y[i] = y[i].mul_add(0.5, x[i]);
            }
        }
        y
    }

    fn grid_blocks(&self) -> u32 {
        self.n.div_ceil(self.threads_per_block)
    }
}

impl RedundantWorkload for IteratedFma {
    fn name(&self) -> &str {
        "iterated_fma"
    }

    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError> {
        let prog = self.program();
        let (x, y) = self.inputs();
        let xb = exec.alloc_words(self.n)?;
        let yb = exec.alloc_words(self.n)?;
        exec.write_f32(&xb, &x)?;
        exec.write_f32(&yb, &y)?;
        exec.launch(
            &prog,
            self.grid_blocks(),
            self.threads_per_block,
            0,
            &[RParam::Buf(&xb), RParam::Buf(&yb), RParam::U32(self.n)],
        )?;
        exec.sync()?;
        let golden = self.golden();
        match exec.read_compare_f32(&yb, self.n as usize)? {
            Comparison::Match(out) => Ok(WorkloadVerdict {
                matched: true,
                correct: out
                    .iter()
                    .zip(&golden)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            }),
            Comparison::Mismatch { outputs, .. } => Ok(WorkloadVerdict {
                matched: false,
                correct: outputs[0]
                    .iter()
                    .zip(&golden)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn fault_free_run_matches_and_is_correct() {
        let wl = IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let v = wl.run(&mut exec).expect("runs");
        assert!(v.matched);
        assert!(v.correct, "GPU FMA must equal host mul_add bitwise");
    }

    #[test]
    fn golden_reference_is_deterministic() {
        let wl = IteratedFma::default();
        assert_eq!(wl.golden(), wl.golden());
        assert_eq!(wl.golden().len(), wl.n as usize);
    }

    #[test]
    fn grid_covers_all_elements() {
        let wl = IteratedFma {
            n: 100,
            threads_per_block: 32,
            iters: 1,
        };
        assert_eq!(wl.grid_blocks(), 4);
    }
}
