//! # higpu-faults — fault models and injection campaigns
//!
//! Quantifies the safety claims of *High-Integrity GPU Designs for Critical
//! Real-Time Automotive Systems* (DATE 2019): under the SRRS/HALF diverse
//! scheduling policies, no single fault — transient, permanent, common
//! cause, or in the kernel scheduler itself — leads to an undetected
//! failure of the redundant computation.
//!
//! * [`model`] — the fault universe: transient single-SM upsets, voltage
//!   droops (common-cause faults striking all SMs at once), permanent SM
//!   stuck-at faults, and kernel-scheduler misrouting;
//! * [`injector`] — a [`higpu_sim::fault::FaultHook`] applying one model;
//! * [`workload`] — adapters running any `higpu_workloads::Workload` (every
//!   Rodinia benchmark included) redundantly under injection;
//! * [`campaign`] — randomized multi-trial injection with per-policy
//!   detection-coverage reports; [`campaign::run_campaign_selected`]
//!   resolves {workload × policy × fault} from the workload registry;
//! * [`checkpoint`] — checkpointed trials: one fault-free reference pass
//!   records periodic device snapshots, each trial restores the snapshot
//!   nearest before its fault arm cycle and simulates only the corrupted
//!   suffix (reports stay bit-identical to from-zero execution).
//!
//! # Examples
//!
//! ```
//! use higpu_core::redundancy::RedundancyMode;
//! use higpu_faults::campaign::{run_campaign, CampaignConfig, FaultSpec};
//! use higpu_faults::workload::IteratedFma;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = CampaignConfig {
//!     trials: 4,
//!     ..CampaignConfig::default()
//! };
//! let workload = IteratedFma {
//!     n: 128,
//!     threads_per_block: 64,
//!     iters: 8,
//! };
//! let report = run_campaign(
//!     &cfg,
//!     &RedundancyMode::srrs_default(6),
//!     FaultSpec::Permanent,
//!     &workload,
//! )?;
//! assert_eq!(report.undetected, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checkpoint;
pub mod injector;
pub mod model;
pub mod workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::campaign::{
        draw_models, run_campaign, run_campaign_selected, run_campaign_selected_serial,
        run_campaign_serial, run_campaign_with_perf, run_trial, CampaignConfig, CampaignError,
        CampaignPerf, CampaignReport, CampaignRunner, CampaignSpec, FaultSpec, TrialOutcome,
    };
    pub use crate::checkpoint::{record_reference, CheckpointConfig, ReferenceRun};
    pub use crate::injector::{FaultInjector, InjectionCounters};
    pub use crate::model::FaultModel;
    pub use crate::workload::{CampaignWorkload, IteratedFma, RedundantWorkload, WorkloadVerdict};
}
