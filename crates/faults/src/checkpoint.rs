//! Checkpointed fault trials: record a fault-free reference pass once,
//! then replay only each trial's corrupted suffix.
//!
//! A fault trial's device state is bit-identical to the fault-free run of
//! the same workload until the fault's [`FaultModel::arm_cycle`] — the
//! injector corrupts nothing before its window opens (and bumps no
//! counters), so every pre-arm cycle a campaign simulates is redundant
//! work. This module removes it:
//!
//! 1. [`record_reference`] runs the `(workload, policy, replicas)` cell
//!    fault-free **once**, pausing every [`CheckpointConfig::stride`]
//!    cycles to record a [`higpu_sim::gpu::DeviceSnapshot`], plus one
//!    snapshot at every sync-segment end.
//! 2. [`SuffixReplayer`] (installed per trial as a
//!    [`higpu_core::redundancy::SyncHook`]) skips whole segments that end
//!    before the trial's arm cycle by *restoring* their recorded end state
//!    instead of simulating them, fast-forwards the first live segment to
//!    the nearest checkpoint at or before the arm cycle, and simulates the
//!    corrupted suffix normally. Trials whose window never activates skip
//!    every segment and re-read the reference outputs from restored memory.
//!
//! The resulting [`crate::campaign::CampaignReport`] is bit-identical to
//! the from-zero engines at every worker count — enforced by the
//! determinism fences in [`crate::campaign`] — because restore-then-run is
//! bit-identical to running straight through (the `snapshot_restore` suite
//! in `higpu_sim`) and the deadline-monitor classification of skipped
//! segments reproduces the watchdog's exceed-iff-`end > limit` rule.

use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor, SyncHook};
use higpu_sim::gpu::{DeviceSnapshot, Gpu, SimError};
use higpu_telemetry::{EventKind, NO_SM};

use crate::campaign::CampaignConfig;
use crate::model::FaultModel;
use crate::workload::RedundantWorkload;

use std::cell::RefCell;
use std::rc::Rc;

/// Checkpoint recording parameters of a campaign
/// ([`CampaignConfig::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Cycles between intra-segment checkpoints of the reference pass.
    /// Smaller strides let trials fast-forward closer to their arm cycle at
    /// the cost of snapshot memory (one dirty-prefix memory image plus
    /// per-SM state each). Segment-end snapshots are always recorded.
    pub stride: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self { stride: 4096 }
    }
}

/// One recorded mid-segment pause point of the reference pass.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Device clock at the pause (a multiple of the stride past the
    /// segment's start, except where the segment ended first).
    cycle: u64,
    snap: DeviceSnapshot,
}

/// The recorded state of one sync segment of the reference pass.
#[derive(Debug, Clone)]
struct SegmentRef {
    /// Intra-segment checkpoints in strictly increasing cycle order.
    checkpoints: Vec<Checkpoint>,
    /// Device state at the segment's sync point (idle).
    end: DeviceSnapshot,
    /// Device clock at the sync point.
    end_cycle: u64,
}

/// The fault-free reference pass of one `(workload, policy, replicas)`
/// cell: per-segment snapshots every trial of that cell replays from.
///
/// `Send + Sync` (snapshots are plain data), so one recording is shared by
/// reference across all campaign workers.
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    segments: Vec<SegmentRef>,
    makespan: u64,
}

impl ReferenceRun {
    /// The fault-free redundant makespan observed by the reference pass —
    /// pause points are transparent, so this equals
    /// [`crate::campaign::dry_run_makespan`] bit-for-bit and campaigns use
    /// it in place of a separate dry run.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of sync segments recorded.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Total snapshot memory, in bytes (approximate; for reports).
    pub fn approx_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                s.end.approx_bytes()
                    + s.checkpoints
                        .iter()
                        .map(|c| c.snap.approx_bytes())
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Recording [`SyncHook`]: runs each segment in `stride`-cycle slices,
/// snapshotting at every pause and at the segment end. Pauses are
/// transparent (restore-then-run equals run-straight-through), so the
/// recorded pass is bit-identical to a plain fault-free run.
struct SnapshotRecorder {
    stride: u64,
    out: Rc<RefCell<Vec<SegmentRef>>>,
}

impl SyncHook for SnapshotRecorder {
    fn on_sync(&mut self, gpu: &mut Gpu, segment: usize) -> Result<u64, SimError> {
        let mut checkpoints = Vec::new();
        loop {
            let target = gpu.cycle() + self.stride.max(1);
            if gpu.run_to_cycle(target)? {
                break;
            }
            gpu.record_event(
                EventKind::Snapshot,
                gpu.cycle(),
                NO_SM,
                segment as u64,
                checkpoints.len() as u64,
            );
            checkpoints.push(Checkpoint {
                cycle: gpu.cycle(),
                snap: gpu.snapshot(),
            });
        }
        let end_cycle = gpu.cycle();
        gpu.record_event(
            EventKind::Snapshot,
            end_cycle,
            NO_SM,
            segment as u64,
            checkpoints.len() as u64,
        );
        self.out.borrow_mut().push(SegmentRef {
            checkpoints,
            end: gpu.snapshot(),
            end_cycle,
        });
        Ok(end_cycle)
    }
}

/// Records the fault-free reference pass of `(workload, mode)` under
/// `cfg.gpu`, snapshotting every `stride` cycles and at each segment end.
///
/// # Errors
///
/// Propagates workload/protocol errors (the reference pass runs without a
/// watchdog, exactly like [`crate::campaign::dry_run_makespan`]).
pub fn record_reference(
    cfg: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
    stride: u64,
) -> Result<ReferenceRun, RedundancyError> {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let out = Rc::new(RefCell::new(Vec::new()));
    let mut exec = RedundantExecutor::new(&mut gpu, mode.clone())?;
    exec.set_sync_hook(Box::new(SnapshotRecorder {
        stride,
        out: out.clone(),
    }));
    workload.run(&mut exec)?;
    drop(exec);
    let makespan = gpu.trace().makespan().unwrap_or(0);
    let segments = Rc::try_unwrap(out)
        .expect("recorder dropped with the executor")
        .into_inner();
    Ok(ReferenceRun { segments, makespan })
}

/// Replaying [`SyncHook`] of one fault trial: skips reference segments that
/// end before the trial's arm cycle by restoring their recorded end state,
/// fast-forwards the first live segment to the nearest checkpoint at or
/// before the arm cycle, then simulates the corrupted suffix normally.
///
/// The restore happens *at the skipped segment's own sync point*, so the
/// workload's next-segment allocations and launches land on the restored
/// base state exactly as they would mid-run from zero.
#[derive(Debug)]
pub struct SuffixReplayer<'r> {
    reference: &'r ReferenceRun,
    arm: u64,
    live: bool,
}

impl<'r> SuffixReplayer<'r> {
    /// A replayer for a trial of `model` against `reference`.
    pub fn new(reference: &'r ReferenceRun, model: FaultModel) -> Self {
        Self {
            reference,
            arm: model.arm_cycle(),
            live: false,
        }
    }
}

impl SyncHook for SuffixReplayer<'_> {
    fn on_sync(&mut self, gpu: &mut Gpu, segment: usize) -> Result<u64, SimError> {
        if !self.live {
            if let Some(seg) = self.reference.segments.get(segment) {
                if self.arm > seg.end_cycle {
                    // The fault cannot strike inside this segment (work can
                    // still issue — and be corrupted — at the end cycle
                    // itself, so the comparison is strict): skip it.
                    // The watchdog's rule is exceed-iff-`end > limit` (it
                    // fires at the first simulated cycle past the limit and
                    // a segment's last simulated cycle is its end), so the
                    // skip classifies deadline cuts identically to a
                    // from-zero run; only the error's cycle field — which
                    // campaigns ignore — differs.
                    if let Some(limit) = gpu.cycle_limit() {
                        if seg.end_cycle > limit {
                            return Err(SimError::DeadlineExceeded {
                                cycle: seg.end_cycle,
                                limit,
                            });
                        }
                    }
                    gpu.restore(&seg.end);
                    return Ok(seg.end_cycle);
                }
                // First segment the fault can reach: fast-forward to the
                // nearest fault-free checkpoint and simulate the suffix.
                // (If the limit precedes the checkpoint the watchdog fires
                // on entry, matching the from-zero classification.)
                self.live = true;
                if let Some(cp) = seg.checkpoints.iter().rev().find(|c| c.cycle <= self.arm) {
                    gpu.restore(&cp.snap);
                }
                return gpu.run_to_idle();
            }
            // Past the recorded segments (a workload syncing more often
            // than its reference pass would be a caller bug, but running
            // live is always correct).
            self.live = true;
        }
        gpu.run_to_idle()
    }
}
