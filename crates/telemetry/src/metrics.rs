//! Cycle-domain histograms with a deterministic, order-independent merge.

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A fixed-layout base-2 histogram over `u64` cycle counts.
///
/// The bucket layout is a constant of the type, so merging two histograms
/// is an element-wise sum — commutative and associative — and campaign
/// workers can aggregate locally in any interleaving and still merge to a
/// bit-identical result. Exact `count`/`sum`/`min`/`max` ride along;
/// percentiles are resolved to a bucket upper bound clamped into
/// `[min, max]`, which keeps them exact for the tails a safety argument
/// cares about (the true maximum is exact by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl CycleHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Element-wise, so
    /// `a.merge(b)` equals `b.merge(a)` and any merge tree over the same
    /// sample multiset produces the same histogram.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), resolved to the upper bound of the
    /// bucket containing the rank-`ceil(q·count)` sample and clamped into
    /// `[min, max]`. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`CycleHistogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99.9th percentile — the tail budget mining reads.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Compact JSON summary object (manual formatting; the repo carries no
    /// serde): `{"count":..,"min":..,"p50":..,"p95":..,"p999":..,"max":..}`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p999\": {}, \"max\": {}}}",
            self.count,
            self.min(),
            self.p50(),
            self.p95(),
            self.p999(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_bounds_and_monotone_percentiles() {
        let mut h = CycleHistogram::new();
        for v in [3u64, 17, 17, 900, 4096, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 70_000);
        let mut prev = 0;
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.999, 1.0] {
            let p = h.percentile(q);
            assert!(p >= prev, "percentiles must be monotone in q");
            assert!((h.min()..=h.max()).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = CycleHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = CycleHistogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 12_345, "min==max pins every quantile");
        }
    }

    /// The deterministic-merge property the campaign engine relies on:
    /// however a sample multiset is partitioned across workers and in
    /// whatever order the partitions are merged, the result is bit-identical
    /// to recording every sample into one histogram.
    #[test]
    fn merge_is_partition_and_order_independent() {
        let mut rng = StdRng::seed_from_u64(0x7E1E_3E7E);
        for case in 0..50 {
            let n = rng.gen_range(1..400usize);
            let samples: Vec<u64> = (0..n)
                .map(|_| {
                    // Mix magnitudes: tight clusters and huge outliers.
                    let scale = rng.gen_range(0..6u32);
                    rng.gen_range(0..10u64.pow(scale).max(1) * 10)
                })
                .collect();
            let mut reference = CycleHistogram::new();
            for &s in &samples {
                reference.record(s);
            }
            // Random partition into k shards.
            let k = rng.gen_range(1..9usize);
            let mut shards = vec![CycleHistogram::new(); k];
            for &s in &samples {
                shards[rng.gen_range(0..k)].record(s);
            }
            // Merge the shards in a random order.
            let mut order: Vec<usize> = (0..k).collect();
            for i in (1..k).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let mut merged = CycleHistogram::new();
            for &i in &order {
                merged.merge(&shards[i]);
            }
            assert_eq!(
                merged, reference,
                "case {case}: merge diverged from direct recording"
            );
        }
    }
}
