//! Cycle-stamped observability for the high-integrity GPU stack.
//!
//! Everything in this crate is keyed to the **simulated cycle**, never wall
//! time, so recordings are deterministic: two runs of the same campaign
//! produce byte-identical event streams and histograms regardless of host
//! load or worker count. The one deliberate exception is
//! [`progress::ProgressLine`], which is wall-clock by nature (rate/ETA) and
//! is therefore never allowed to feed any report.
//!
//! * [`event`] — the [`event::TraceEvent`] vocabulary and the preallocated
//!   [`event::EventRing`] sink devices record into. Disabled recording is a
//!   `None` check at each hook site; enabled recording is a bounds check
//!   plus a store into preallocated storage — no per-event allocation.
//! * [`metrics`] — [`metrics::CycleHistogram`], a fixed-layout log2
//!   histogram over cycle counts whose merge is element-wise and therefore
//!   order-independent: campaign workers aggregate locally and merge
//!   deterministically.
//! * [`chrome`] — a Chrome-trace-event (`chrome://tracing` / Perfetto)
//!   JSON builder plus the device-event → timeline-track conversion.
//! * [`progress`] — a throttled stderr progress line for long campaigns.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod progress;

pub use chrome::ChromeTrace;
pub use event::{EventKind, EventRing, TraceEvent, NO_SM};
pub use metrics::CycleHistogram;
pub use progress::ProgressLine;
