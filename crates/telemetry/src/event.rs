//! Cycle-stamped trace events and the preallocated ring they are sunk into.

/// `sm` value of a device-wide event (kernel launches, restores, …).
pub const NO_SM: u32 = u32::MAX;

/// What happened. The vocabulary covers every hook the stack records:
/// device-level kernel/block lifecycle, checkpointing, fault injection and
/// classification, pipeline stage execution, and SM health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A kernel was submitted (`id` = kernel id, `aux` = arrival cycle).
    KernelLaunch,
    /// A kernel's last block retired (`id` = kernel id).
    KernelComplete,
    /// A block was placed on an SM (`id` = kernel id, `aux` = block index).
    BlockDispatch,
    /// A block finished on an SM (`id` = kernel id, `aux` = block index).
    BlockRetire,
    /// A device snapshot was captured at `cycle`.
    Snapshot,
    /// The device was restored to `cycle` (`aux` = cycles fast-forwarded).
    Restore,
    /// A fault model's window opens at `cycle` (`aux` = flipped bit).
    FaultArmed,
    /// A trial classified as detected at `cycle` (`aux` = arm→detect latency).
    FaultDetected,
    /// A pipeline stage attempt began (`id` = stage index, `aux` = attempt).
    StageStart,
    /// A pipeline stage delivered or fail-stopped (`id` = stage index,
    /// `aux` = status code: 0 clean, 1 corrected, 2 recovered, 3 fail-stop).
    StageFinish,
    /// A pipeline stage attempt was retried (`id` = stage index,
    /// `aux` = the new attempt number).
    StageRetry,
    /// An SM was convicted and quarantined (`sm` = the removed SM).
    QuarantineConvicted,
}

impl EventKind {
    /// Short name used for timeline event labels and JSON validation.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::KernelLaunch => "kernel-launch",
            EventKind::KernelComplete => "kernel-complete",
            EventKind::BlockDispatch => "block-dispatch",
            EventKind::BlockRetire => "block-retire",
            EventKind::Snapshot => "snapshot",
            EventKind::Restore => "restore",
            EventKind::FaultArmed => "fault-armed",
            EventKind::FaultDetected => "fault-detected",
            EventKind::StageStart => "stage-start",
            EventKind::StageFinish => "stage-finish",
            EventKind::StageRetry => "stage-retry",
            EventKind::QuarantineConvicted => "quarantine-convicted",
        }
    }
}

/// One recorded event, stamped with the simulated cycle it happened at.
///
/// `id`/`aux` are kind-specific payloads (see [`EventKind`]); `sm` is
/// [`NO_SM`] for device-wide events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Event kind.
    pub kind: EventKind,
    /// SM the event concerns, or [`NO_SM`].
    pub sm: u32,
    /// Primary payload (kernel id, stage index, …).
    pub id: u64,
    /// Secondary payload (block index, skipped cycles, attempt, …).
    pub aux: u64,
}

/// A bounded, preallocated event sink.
///
/// All storage is allocated once in [`EventRing::with_capacity`]; recording
/// never allocates. When the ring is full the **oldest** event is
/// overwritten (ring semantics — the tail of a long run is what a crash
/// dump wants) and [`EventRing::overwritten`] counts the loss, so exporters
/// can report truncation instead of silently presenting a partial timeline.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    capacity: usize,
    overwritten: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events, fully preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            overwritten: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to ring wrap-around since the last clear.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Records one event. Never allocates; overwrites the oldest retained
    /// event when full (a zero-capacity ring drops everything).
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else if self.capacity > 0 {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        } else {
            self.overwritten += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        let (wrapped, first) = self.buf.split_at(self.head);
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(first);
        out.extend_from_slice(wrapped);
        out
    }

    /// Removes and returns the retained events (oldest first), keeping the
    /// ring's storage allocated.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let out = self.to_vec();
        self.clear();
        out
    }

    /// Discards all retained events and the overwrite count; storage stays
    /// allocated.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.overwritten = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::BlockRetire,
            sm: 0,
            id: 0,
            aux: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_overwrites() {
        let mut r = EventRing::with_capacity(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let cycles: Vec<u64> = r.to_vec().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest events were overwritten");
    }

    #[test]
    fn push_never_grows_the_allocation() {
        let mut r = EventRing::with_capacity(8);
        let cap_before = r.buf.capacity();
        for c in 0..100 {
            r.push(ev(c));
        }
        assert_eq!(r.buf.capacity(), cap_before);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn drain_returns_in_order_and_retains_capacity() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..6 {
            r.push(ev(c));
        }
        let drained: Vec<u64> = r.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(drained, vec![2, 3, 4, 5]);
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
        assert!(r.buf.capacity() >= 4);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = EventRing::with_capacity(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 1);
    }
}
