//! Chrome-trace-event JSON export (`chrome://tracing` / Perfetto).
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) with complete
//! (`ph:"X"`), instant (`ph:"i"`) and metadata (`ph:"M"`) events. The `ts`
//! field carries **simulated cycles** (viewers display them as
//! microseconds; the unit label is cosmetic, the shapes are what matter).
//! Formatting is manual `format!` JSON, matching the rest of the repo.

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent, NO_SM};

/// Track (`tid`) used for device-wide events within a device process.
pub const DEVICE_TID: u32 = 9_999;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental Chrome-trace builder: push events, then [`ChromeTrace::to_json`].
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far (including metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process (one timeline group in the viewer).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }

    /// Names a thread (one track within a process).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }

    /// A complete (span) event covering `[ts, ts + dur]`.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, ts: u64, dur: u64) {
        self.events.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"dur\": {dur}}}",
            escape(name)
        ));
    }

    /// A thread-scoped instant event at `ts`.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, ts: u64) {
        self.events.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}}}",
            escape(name)
        ));
    }

    /// Serializes the trace to the Chrome JSON object form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n],\n\"displayTimeUnit\": \"ns\"\n}\n");
        out
    }
}

/// Converts a device's recorded [`TraceEvent`]s into timeline tracks under
/// process `pid`: one track per SM carrying block spans (dispatch→retire)
/// and SM-local instants, plus a [`DEVICE_TID`] track for device-wide
/// instants (kernel lifecycle, snapshots, restores).
pub fn add_device_events(trace: &mut ChromeTrace, pid: u32, events: &[TraceEvent]) {
    let mut sms: Vec<u32> = events
        .iter()
        .filter(|e| e.sm != NO_SM)
        .map(|e| e.sm)
        .collect();
    sms.sort_unstable();
    sms.dedup();
    for &sm in &sms {
        trace.thread_name(pid, sm, &format!("SM {sm}"));
    }
    trace.thread_name(pid, DEVICE_TID, "device");
    // Pair dispatch/retire per (kernel, block); a block can be re-placed
    // after a restore, so retire consumes the most recent dispatch.
    let mut open: HashMap<(u64, u64), (u64, u32)> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::BlockDispatch => {
                open.insert((e.id, e.aux), (e.cycle, e.sm));
            }
            EventKind::BlockRetire => {
                let name = format!("k{} b{}", e.id, e.aux);
                if let Some((start, sm)) = open.remove(&(e.id, e.aux)) {
                    trace.complete(pid, sm, &name, start, e.cycle.saturating_sub(start));
                } else {
                    trace.instant(pid, e.sm, &name, e.cycle);
                }
            }
            EventKind::KernelLaunch | EventKind::KernelComplete => {
                trace.instant(
                    pid,
                    DEVICE_TID,
                    &format!("{} k{}", e.kind.label(), e.id),
                    e.cycle,
                );
            }
            _ => {
                let tid = if e.sm == NO_SM { DEVICE_TID } else { e.sm };
                trace.instant(pid, tid, e.kind.label(), e.cycle);
            }
        }
    }
    // Blocks still in flight when recording stopped: show the dispatch.
    let mut unfinished: Vec<((u64, u64), (u64, u32))> = open.into_iter().collect();
    unfinished.sort_unstable();
    for ((kernel, block), (start, sm)) in unfinished {
        trace.instant(pid, sm, &format!("k{kernel} b{block} (in flight)"), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, cycle: u64, sm: u32, id: u64, aux: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind,
            sm,
            id,
            aux,
        }
    }

    #[test]
    fn block_spans_pair_dispatch_with_retire() {
        let mut t = ChromeTrace::new();
        add_device_events(
            &mut t,
            0,
            &[
                ev(EventKind::BlockDispatch, 10, 2, 0, 0),
                ev(EventKind::BlockRetire, 55, 2, 0, 0),
            ],
        );
        let json = t.to_json();
        assert!(json.contains("\"name\": \"SM 2\""));
        assert!(json.contains("\"name\": \"k0 b0\""));
        assert!(json.contains("\"ts\": 10, \"dur\": 45"));
    }

    #[test]
    fn device_events_land_on_the_device_track() {
        let mut t = ChromeTrace::new();
        add_device_events(
            &mut t,
            1,
            &[
                ev(EventKind::KernelLaunch, 0, NO_SM, 3, 7),
                ev(EventKind::Restore, 4096, NO_SM, 1, 4000),
                ev(EventKind::FaultArmed, 500, 1, 0, 9),
            ],
        );
        let json = t.to_json();
        assert!(json.contains(&format!("\"tid\": {DEVICE_TID}")));
        assert!(json.contains("kernel-launch k3"));
        assert!(json.contains("\"name\": \"restore\""));
        assert!(json.contains(
            "\"name\": \"fault-armed\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": 1"
        ));
    }

    #[test]
    fn names_are_json_escaped() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "a\"b\\c\nd");
        assert!(t.to_json().contains("a\\\"b\\\\c\\nd"));
    }
}
