//! A throttled stderr progress line for long-running campaigns.
//!
//! Deliberately wall-clock (rate and ETA are about the host, not the
//! simulation) and deliberately write-only: nothing here may feed a report,
//! so the bit-identity contract of the cycle-domain telemetry is untouched.

use std::io::Write;
use std::time::{Duration, Instant};

/// Renders `\r`-rewritten progress to stderr, at most ~10 times a second.
///
/// Construct with the work-item total, call [`ProgressLine::update`] as
/// items complete, and [`ProgressLine::finish`] once done (prints the final
/// state and a newline). A disabled line (`enabled = false`) is a no-op, so
/// callers thread one through unconditionally and let a `--progress` flag
/// decide.
#[derive(Debug)]
pub struct ProgressLine {
    label: String,
    total: u64,
    enabled: bool,
    started: Instant,
    last_render: Option<Instant>,
    last_len: usize,
}

impl ProgressLine {
    /// A progress line over `total` items; inert unless `enabled`.
    pub fn new(label: &str, total: u64, enabled: bool) -> Self {
        Self {
            label: label.to_string(),
            total,
            enabled,
            started: Instant::now(),
            last_render: None,
            last_len: 0,
        }
    }

    fn render(&mut self, done: u64, detail: &str, force: bool) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last_render {
                if now.duration_since(last) < Duration::from_millis(100) {
                    return;
                }
            }
        }
        self.last_render = Some(now);
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && done < self.total {
            format!(" eta {:.0}s", (self.total - done) as f64 / rate)
        } else {
            String::new()
        };
        let line = format!(
            "{}: {}/{} ({:.1}/s{}) {}",
            self.label, done, self.total, rate, eta, detail
        );
        // Pad over any longer previous render before the carriage return.
        let pad = self.last_len.saturating_sub(line.len());
        self.last_len = line.len();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{}{}", line, " ".repeat(pad));
        let _ = err.flush();
    }

    /// Reports `done` completed items; `detail` is free-form trailing text
    /// (outcome tallies, current cell label, …).
    pub fn update(&mut self, done: u64, detail: &str) {
        self.render(done, detail, false);
    }

    /// Renders the final state and terminates the line.
    pub fn finish(&mut self, done: u64, detail: &str) {
        if !self.enabled {
            return;
        }
        self.render(done, detail, true);
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_line_is_inert() {
        let mut p = ProgressLine::new("test", 10, false);
        p.update(3, "x");
        p.finish(10, "done");
        assert_eq!(p.last_render, None, "disabled line never renders");
    }
}
