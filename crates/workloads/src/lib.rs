//! # higpu-workloads — the unified workload layer
//!
//! Before this crate existed the repository had **three** incompatible ways
//! of running a computation on the simulated GPU: the Rodinia benchmark
//! harness (`Benchmark`/`SoloSession`/`RedundantSession`), the
//! fault-campaign workloads (`faults::RedundantWorkload` driving a
//! [`higpu_core::redundancy::RedundantExecutor`] directly), and the COTS
//! end-to-end model's ad-hoc run loop. This crate collapses them into one
//! stack:
//!
//! * [`session`] — the backend abstraction: a [`GpuSession`] is the
//!   environment a host program runs in (solo GPU, redundant DCLS protocol,
//!   or any future backend), with buffer handles and replica-generic
//!   parameters;
//! * [`workload`] — the [`Workload`] trait: deterministic inputs, a GPU host
//!   program written against [`GpuSession`], a CPU reference, and a
//!   verification tolerance;
//! * [`registry`] — the name → factory [`WorkloadRegistry`] with a
//!   [`Scale`] knob (`Full` paper-sized inputs vs. `Campaign` small fixed
//!   grids for fault-injection throughput);
//! * [`runner`] — convenience drivers (`run_solo`, `run_redundant`) shared
//!   by the fault-campaign engine, the COTS model and the benches;
//! * [`synthetic`] — built-in synthetic workloads (the iterated-FMA stress
//!   kernel used by campaign throughput benchmarks);
//! * [`stage`] — the [`StageProgram`] generalization of [`Workload`] for
//!   multi-kernel pipelines: a stage computes over the outputs of its
//!   predecessor stages and is verified against a CPU reference over the
//!   same inputs (the pipeline graph itself lives in `higpu_pipeline`).
//!
//! Any registered workload can run in any mode (solo / redundant) under any
//! scheduler policy inside a fault campaign — see
//! `higpu_faults::campaign::run_campaign_selected`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod registry;
pub mod runner;
pub mod session;
pub mod stage;
pub mod synthetic;
pub mod workload;

pub use registry::{Scale, WorkloadFactory, WorkloadRegistry};
pub use session::{BufId, GpuSession, RedundantSession, SParam, SessionError, SoloSession};
pub use stage::{StageInputs, StageProgram, WorkloadStage};
pub use workload::{
    f32s_to_words, verify_words, Tolerance, VerifyError, Workload, DEFAULT_FTTI_MULTIPLIER,
    MINED_FTTI_MULTIPLIER,
};
