//! Pipeline stage programs: the unit of execution of a multi-kernel
//! real-time pipeline.
//!
//! A [`StageProgram`] is a [`crate::Workload`] generalized along one axis:
//! its computation is a function of **upstream data** — the outputs of its
//! predecessor stages in a pipeline DAG — instead of self-generated inputs.
//! The CPU reference is correspondingly a pure function of the *same*
//! inputs, so every stage can be verified against a host recomputation of
//! whatever data actually flowed into it (the per-component golden-model
//! check of a real automotive pipeline). Buffers flow between stages
//! through the host, exactly as the DCLS protocol prescribes: each
//! redundant offload round-trips its outputs through the lockstep CPU for
//! comparison/voting before the next stage may consume them.
//!
//! [`WorkloadStage`] adapts any registered [`crate::Workload`] into a
//! *source* stage (no upstream inputs); consuming stages live in the
//! `higpu_pipeline` crate next to the pipeline graph.

use crate::session::{GpuSession, SessionError};
use crate::workload::{verify_words, Tolerance, VerifyError, Workload, DEFAULT_FTTI_MULTIPLIER};
use std::fmt;

/// The outputs of a stage's predecessor stages, in dependency order.
pub type StageInputs<'a> = &'a [&'a [u32]];

/// One stage of a multi-kernel pipeline: a GPU host program over upstream
/// words, with a CPU reference over the same words.
///
/// `Sync` for the same reason [`Workload`] is: campaign workers share one
/// pipeline description across threads, each driving a private GPU.
pub trait StageProgram: fmt::Debug + Sync {
    /// Stage program name (stages of one pipeline get unique instance
    /// names at the graph level).
    fn name(&self) -> &'static str;

    /// Runs the stage's host program in `session`, consuming `inputs` (the
    /// voted outputs of the upstream stages) and returning the stage's
    /// output words.
    ///
    /// # Errors
    ///
    /// Propagates [`SessionError`] from the backend.
    fn run(
        &self,
        session: &mut dyn GpuSession,
        inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError>;

    /// CPU reference output for the given inputs — a pure function of
    /// `inputs`, so a stage can be verified against whatever data actually
    /// reached it (including legitimately-perturbed upstream values).
    fn reference(&self, inputs: StageInputs<'_>) -> Vec<u32>;

    /// GPU-vs-reference comparison tolerance.
    fn tolerance(&self) -> Tolerance;

    /// Verifies a stage output against the CPU reference on `inputs`.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch on failure.
    fn verify(&self, out: &[u32], inputs: StageInputs<'_>) -> Result<(), VerifyError> {
        verify_words(out, &self.reference(inputs), self.tolerance())
    }

    /// The stage's FTTI budget multiplier (see
    /// [`Workload::ftti_multiplier`]): the stage's watchdog deadline is
    /// this multiple of its fault-free makespan, and the pipeline's
    /// end-to-end FTTI is the sum of the stage budgets.
    fn ftti_multiplier(&self) -> u64 {
        DEFAULT_FTTI_MULTIPLIER
    }
}

/// Adapts any [`Workload`] into a *source* stage: upstream inputs are
/// ignored (the workload generates its own deterministic data, e.g. the
/// sensor-frame proxies at a pipeline's roots), and the reference is the
/// workload's own.
pub struct WorkloadStage {
    inner: Box<dyn Workload>,
}

impl WorkloadStage {
    /// Wraps a workload.
    pub fn new(inner: Box<dyn Workload>) -> Self {
        Self { inner }
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &dyn Workload {
        &*self.inner
    }
}

impl fmt::Debug for WorkloadStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadStage")
            .field("workload", &self.inner.name())
            .finish()
    }
}

impl StageProgram for WorkloadStage {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(
        &self,
        session: &mut dyn GpuSession,
        _inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError> {
        self.inner.run(session)
    }

    fn reference(&self, _inputs: StageInputs<'_>) -> Vec<u32> {
        self.inner.reference()
    }

    fn tolerance(&self) -> Tolerance {
        self.inner.tolerance()
    }

    /// Stages keep the flat validated budget rather than delegating to the
    /// wrapped workload's (possibly mined) campaign multiplier: the mined
    /// per-workload budgets were validated against single-computation
    /// campaign tails, while a stage budget must also absorb in-FTTI
    /// re-execution (retry + BIST) slack. Per-*stage* budget mining is the
    /// open ROADMAP item.
    fn ftti_multiplier(&self) -> u64 {
        DEFAULT_FTTI_MULTIPLIER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SoloSession;
    use crate::synthetic::IteratedFma;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn workload_stage_runs_like_its_workload_and_ignores_inputs() {
        let stage = WorkloadStage::new(Box::new(IteratedFma::campaign()));
        assert_eq!(stage.name(), "iterated_fma");
        assert_eq!(stage.ftti_multiplier(), DEFAULT_FTTI_MULTIPLIER);
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let junk: &[u32] = &[0xDEAD, 0xBEEF];
        let out = stage.run(&mut s, &[junk]).expect("runs");
        stage.verify(&out, &[junk]).expect("matches reference");
        assert_eq!(out, IteratedFma::campaign().reference());
    }
}
