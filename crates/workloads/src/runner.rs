//! Convenience drivers shared by the fault-campaign engine, the COTS model
//! and the benches: run a [`Workload`] solo or redundantly without writing
//! the session boilerplate.

use crate::session::{RedundantSession, SessionError, SoloSession};
use crate::workload::Workload;
use higpu_core::redundancy::RedundantExecutor;
use higpu_sim::gpu::Gpu;

/// Runs `workload` non-redundantly on `gpu`; returns the output words.
///
/// # Errors
///
/// Propagates [`SessionError`] from the workload.
pub fn run_solo(gpu: &mut Gpu, workload: &dyn Workload) -> Result<Vec<u32>, SessionError> {
    let mut session = SoloSession::new(gpu);
    workload.run(&mut session)
}

/// Outcome of one mismatch-tolerant redundant run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundantRun {
    /// The voted output words (replica 0's words where a disagreement had
    /// no strict majority — identical to replica 0's output for N = 2).
    pub output: Vec<u32>,
    /// Reads on which the replicas disagreed (0 on a fault-free run).
    pub mismatched_reads: usize,
    /// Disagreeing reads fully settled by a strict replica majority (NMR
    /// forward recovery; always 0 for two replicas).
    pub corrected_reads: usize,
    /// Disagreeing reads where at least one word tied (fail-stop).
    pub tied_reads: usize,
    /// Word index of the first disagreement, if any.
    pub first_mismatch: Option<usize>,
}

impl RedundantRun {
    /// True when every read-back compared bitwise equal across replicas.
    pub fn matched(&self) -> bool {
        self.mismatched_reads == 0
    }

    /// True when the replicas disagreed but **every** disagreement was
    /// outvoted by a strict majority — the output is the voted value and
    /// execution could continue without re-execution.
    pub fn fully_corrected(&self) -> bool {
        self.mismatched_reads > 0 && self.tied_reads == 0
    }
}

/// Runs `workload` redundantly under `exec` in mismatch-tolerant mode: the
/// host program always runs to completion, and replica disagreements are
/// reported in the result instead of aborting — the form fault-injection
/// campaigns need to classify detected faults vs. silent corruption.
///
/// # Errors
///
/// Propagates [`SessionError`] from the workload (device errors, protocol
/// errors — but never `ReplicaMismatch`, which is recorded instead).
pub fn run_redundant(
    exec: &mut RedundantExecutor<'_>,
    workload: &dyn Workload,
) -> Result<RedundantRun, SessionError> {
    let mut session = RedundantSession::tolerant(exec);
    let output = workload.run(&mut session)?;
    Ok(RedundantRun {
        output,
        mismatched_reads: session.mismatched_reads(),
        corrected_reads: session.corrected_reads(),
        tied_reads: session.tied_reads(),
        first_mismatch: session.first_mismatch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::IteratedFma;
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::config::GpuConfig;

    #[test]
    fn solo_and_redundant_drivers_agree_with_reference() {
        let wl = IteratedFma::campaign();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let solo = run_solo(&mut gpu, &wl).expect("solo");
        wl.verify(&solo).expect("solo matches reference");

        let mut gpu2 = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu2, RedundancyMode::srrs_default(6)).expect("mode");
        let red = run_redundant(&mut exec, &wl).expect("redundant");
        assert!(red.matched());
        assert_eq!(red.first_mismatch, None);
        assert_eq!(red.output, solo, "same computation, same bits");
    }
}
