//! Built-in synthetic workloads.
//!
//! [`IteratedFma`] is the campaign-throughput stress kernel: long enough
//! per-element work that transient fault windows have something to hit,
//! bitwise-deterministic arithmetic so golden comparison is exact.

use crate::registry::WorkloadRegistry;
use crate::session::{GpuSession, SParam, SessionError};
use crate::workload::{f32s_to_words, Tolerance, Workload};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use std::sync::Arc;

/// An iterated fused-multiply-add over a vector:
/// `y[i] ← y[i]*0.5 + x[i]`, repeated `iters` times per element.
///
/// The iteration count stretches the kernel's execution window so transient
/// fault windows have something to hit; the arithmetic is bitwise
/// deterministic so the golden comparison is exact.
#[derive(Debug, Clone)]
pub struct IteratedFma {
    /// Elements.
    pub n: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// FMA iterations per element.
    pub iters: u32,
}

impl Default for IteratedFma {
    fn default() -> Self {
        Self {
            n: 1024,
            threads_per_block: 128,
            iters: 64,
        }
    }
}

impl IteratedFma {
    /// Campaign-scale instance: small fixed grid, short makespan.
    pub fn campaign() -> Self {
        Self {
            n: 256,
            threads_per_block: 64,
            iters: 16,
        }
    }

    /// Builds the kernel program.
    pub fn program(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("iterated_fma");
        let x = b.param(0);
        let y = b.param(1);
        let n = b.param(2);
        let i = b.global_tid_x();
        let in_range = b.isetp(higpu_sim::isa::CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let xa = b.addr_w(x, i);
            let ya = b.addr_w(y, i);
            let xv = b.ldg(xa, 0);
            let acc = b.ldg(ya, 0);
            b.for_range(0u32, self.iters, 1u32, |b, _k| {
                b.ffma_to(acc, acc, 0.5f32, xv);
            });
            b.stg(ya, 0, acc);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Deterministic inputs.
    pub fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..self.n).map(|i| (i % 97) as f32 * 0.125 + 1.0).collect();
        let y: Vec<f32> = (0..self.n).map(|i| (i % 13) as f32 * 0.5).collect();
        (x, y)
    }

    /// Host-side golden reference (bitwise identical arithmetic).
    pub fn golden(&self) -> Vec<f32> {
        let (x, mut y) = self.inputs();
        for i in 0..self.n as usize {
            for _ in 0..self.iters {
                y[i] = y[i].mul_add(0.5, x[i]);
            }
        }
        y
    }

    fn grid_blocks(&self) -> u32 {
        self.n.div_ceil(self.threads_per_block)
    }
}

impl Workload for IteratedFma {
    fn name(&self) -> &'static str {
        "iterated_fma"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let (x, y) = self.inputs();
        let xb = s.alloc_words(self.n)?;
        let yb = s.alloc_words(self.n)?;
        s.write_f32(xb, &x)?;
        s.write_f32(yb, &y)?;
        s.launch(
            &self.program(),
            Dim3::x(self.grid_blocks()),
            Dim3::x(self.threads_per_block),
            0,
            &[SParam::Buf(xb), SParam::Buf(yb), SParam::U32(self.n)],
        )?;
        s.sync()?;
        s.read_u32(yb, self.n as usize)
    }

    fn reference(&self) -> Vec<u32> {
        f32s_to_words(&self.golden())
    }

    fn tolerance(&self) -> Tolerance {
        // The GPU FMA equals the host `mul_add` bitwise, so verification is
        // exact — any deviation is corruption, not rounding.
        Tolerance::Exact
    }

    fn ftti_multiplier(&self) -> u64 {
        // Fixed trip counts, no data-dependent control flow: corrupted runs
        // either terminate near the fault-free makespan or run away on a
        // flipped loop counter — the mined budget separates the two just as
        // cleanly as the default did.
        crate::workload::MINED_FTTI_MULTIPLIER
    }
}

/// Registers the synthetic workloads.
pub fn register(reg: &mut WorkloadRegistry) {
    crate::register_scaled!(reg, "iterated_fma", IteratedFma);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_solo;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn fault_free_run_is_bitwise_correct() {
        let wl = IteratedFma {
            n: 256,
            threads_per_block: 64,
            iters: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let out = run_solo(&mut gpu, &wl).expect("runs");
        wl.verify(&out)
            .expect("GPU FMA must equal host mul_add bitwise");
    }

    #[test]
    fn golden_reference_is_deterministic() {
        let wl = IteratedFma::default();
        assert_eq!(wl.golden(), wl.golden());
        assert_eq!(wl.golden().len(), wl.n as usize);
    }

    #[test]
    fn grid_covers_all_elements() {
        let wl = IteratedFma {
            n: 100,
            threads_per_block: 32,
            iters: 1,
        };
        assert_eq!(wl.grid_blocks(), 4);
    }
}
