//! The session abstraction: lets a workload's host program run unchanged in
//! any environment — solo (plain GPU), redundant (DCLS protocol), or any
//! future backend.
//!
//! Extracted from the Rodinia benchmark harness so the fault-campaign
//! engine, the COTS end-to-end model and the benches all drive the same
//! five-step host-program shape (allocate, upload, launch, sync, read).

use higpu_core::redundancy::{RBuf, RedundancyError, RedundantExecutor};
use higpu_core::vote::VoteOutcome;
use higpu_sim::gpu::{DevPtr, Gpu, SimError};
use higpu_sim::kernel::{Dim3, KernelLaunch, LaunchConfig};
use higpu_sim::program::Program;
use std::fmt;
use std::sync::Arc;

/// Handle to a logical device buffer owned by a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(pub(crate) usize);

impl BufId {
    /// The buffer's slot within its owning session. Session backends
    /// outside this crate (e.g. the pipeline frame executor's channel
    /// session) key their own buffer tables with it.
    pub fn index(self) -> usize {
        self.0
    }

    /// The handle for slot `index` — the constructor such external session
    /// backends hand back from their `alloc_words`.
    pub fn from_index(index: usize) -> Self {
        BufId(index)
    }
}

/// A kernel parameter referencing session buffers.
#[derive(Debug, Clone, Copy)]
pub enum SParam {
    /// Address of a buffer.
    Buf(BufId),
    /// Address of a buffer plus a word offset.
    BufOffset(BufId, u32),
    /// Raw word.
    U32(u32),
    /// Signed integer.
    I32(i32),
    /// Float (raw bits).
    F32(f32),
}

/// Errors surfaced while running a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Device error.
    Sim(SimError),
    /// Redundancy-protocol error.
    Redundancy(RedundancyError),
    /// Redundant replicas disagreed on a host-read value (fault detected).
    ReplicaMismatch {
        /// Word index of the first disagreement.
        first_word: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sim(e) => write!(f, "device error: {e}"),
            SessionError::Redundancy(e) => write!(f, "redundancy error: {e}"),
            SessionError::ReplicaMismatch { first_word } => {
                write!(f, "replica mismatch at word {first_word}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

impl From<RedundancyError> for SessionError {
    fn from(e: RedundancyError) -> Self {
        SessionError::Redundancy(e)
    }
}

/// The environment a workload's host program runs in.
///
/// Workloads allocate buffers, upload data, launch kernels (synchronizing
/// between dependent launches) and read results back — the same five-step
/// shape as a CUDA host program.
pub trait GpuSession {
    /// Allocates a logical buffer of `words` 32-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Sim`] when device memory is exhausted.
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError>;

    /// Uploads words into a buffer.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError>;

    /// Uploads floats into a buffer.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError>;

    /// Launches a kernel (asynchronously; see [`GpuSession::sync`]).
    ///
    /// # Errors
    ///
    /// Propagates launch errors (e.g. unschedulable geometry).
    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError>;

    /// Waits for all launched kernels to complete.
    ///
    /// # Errors
    ///
    /// Propagates device stalls.
    fn sync(&mut self) -> Result<(), SessionError>;

    /// Reads `words` words back (synchronizes first). In redundant sessions
    /// the replicas are compared; a disagreement is reported as
    /// [`SessionError::ReplicaMismatch`] (or recorded, for sessions built
    /// with [`RedundantSession::tolerant`]).
    ///
    /// # Errors
    ///
    /// Propagates backend errors and replica mismatches.
    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError>;

    /// Reads `words` floats back (bitwise-compared in redundant sessions).
    ///
    /// # Errors
    ///
    /// Propagates backend errors and replica mismatches.
    fn read_f32(&mut self, buf: BufId, words: usize) -> Result<Vec<f32>, SessionError> {
        Ok(self
            .read_u32(buf, words)?
            .into_iter()
            .map(f32::from_bits)
            .collect())
    }
}

/// Non-redundant session over a plain GPU (baselines, profiling).
#[derive(Debug)]
pub struct SoloSession<'g> {
    gpu: &'g mut Gpu,
    buffers: Vec<DevPtr>,
    pending: bool,
}

impl<'g> SoloSession<'g> {
    /// Wraps a GPU.
    pub fn new(gpu: &'g mut Gpu) -> Self {
        Self {
            gpu,
            buffers: Vec::new(),
            pending: false,
        }
    }

    /// The underlying GPU.
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }
}

impl GpuSession for SoloSession<'_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        let ptr = self.gpu.alloc_words(words)?;
        self.buffers.push(ptr);
        Ok(BufId(self.buffers.len() - 1))
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        self.gpu.write_u32(self.buffers[buf.0], data);
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        self.gpu.write_f32(self.buffers[buf.0], data);
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        let mut cfg = LaunchConfig::new(grid, block).shared_mem(shared_mem_bytes);
        for p in params {
            cfg = match *p {
                SParam::Buf(b) => cfg.param_u32(self.buffers[b.0].0),
                SParam::BufOffset(b, w) => cfg.param_u32(self.buffers[b.0].offset_words(w).0),
                SParam::U32(v) => cfg.param_u32(v),
                SParam::I32(v) => cfg.param_i32(v),
                SParam::F32(v) => cfg.param_f32(v),
            };
        }
        self.gpu
            .launch(KernelLaunch::new(program.clone(), cfg).tag(program.name().to_string()))?;
        self.pending = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        if self.pending {
            self.gpu.run_to_idle()?;
            self.pending = false;
        }
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.sync()?;
        Ok(self.gpu.read_u32(self.buffers[buf.0], words))
    }
}

/// What a redundant session does when replicas disagree on a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MismatchPolicy {
    /// Surface [`SessionError::ReplicaMismatch`] on any disagreement (the
    /// conservative DCLS recovery path: the computation is aborted and
    /// re-executed, regardless of whether an N ≥ 3 majority could have
    /// outvoted the corruption).
    Fail,
    /// Record the disagreement and hand back the **voted** data so the
    /// host program runs to completion — the form fault-injection campaigns
    /// need to classify a trial as corrected vs. detected vs. silently
    /// corrupted. For two replicas the voted data on a (necessarily tied)
    /// disagreement is replica 0's, exactly as classic DCLS hands back.
    Record,
}

/// Redundant session: every operation follows the N-modular redundancy
/// protocol (per-replica allocation, copies and launches; majority vote on
/// read-back — the two-replica vote degenerates to the DCLS compare).
#[derive(Debug)]
pub struct RedundantSession<'g, 'e> {
    exec: &'e mut RedundantExecutor<'g>,
    buffers: Vec<RBuf>,
    pending: bool,
    on_mismatch: MismatchPolicy,
    corrected_reads: usize,
    tied_reads: usize,
    first_mismatch: Option<usize>,
    bytes_uploaded: u64,
    bytes_read_back: u64,
}

impl<'g, 'e> RedundantSession<'g, 'e> {
    /// Wraps a redundant executor. Replica disagreements abort the host
    /// program with [`SessionError::ReplicaMismatch`].
    pub fn new(exec: &'e mut RedundantExecutor<'g>) -> Self {
        Self::with_policy(exec, MismatchPolicy::Fail)
    }

    /// Wraps a redundant executor in mismatch-tolerant mode: replica
    /// disagreements are recorded (see
    /// [`RedundantSession::mismatched_reads`],
    /// [`RedundantSession::corrected_reads`],
    /// [`RedundantSession::tied_reads`]) and the voted data is returned, so
    /// the host program runs to completion. Fault-injection campaigns use
    /// this to classify complete trials.
    pub fn tolerant(exec: &'e mut RedundantExecutor<'g>) -> Self {
        Self::with_policy(exec, MismatchPolicy::Record)
    }

    fn with_policy(exec: &'e mut RedundantExecutor<'g>, on_mismatch: MismatchPolicy) -> Self {
        Self {
            exec,
            buffers: Vec::new(),
            pending: false,
            on_mismatch,
            corrected_reads: 0,
            tied_reads: 0,
            first_mismatch: None,
            bytes_uploaded: 0,
            bytes_read_back: 0,
        }
    }

    /// Number of reads on which the replicas disagreed, whether outvoted or
    /// tied (only ever non-zero for sessions built with
    /// [`RedundantSession::tolerant`]).
    pub fn mismatched_reads(&self) -> usize {
        self.corrected_reads + self.tied_reads
    }

    /// Disagreeing reads fully settled by a strict replica majority (the
    /// NMR forward-recovery case; always 0 for two replicas).
    pub fn corrected_reads(&self) -> usize {
        self.corrected_reads
    }

    /// Disagreeing reads with at least one word no strict majority settled
    /// (fail-stop detections; every two-replica disagreement lands here).
    pub fn tied_reads(&self) -> usize {
        self.tied_reads
    }

    /// Word index of the first disagreement observed, if any.
    pub fn first_mismatch(&self) -> Option<usize> {
        self.first_mismatch
    }

    /// Host→device bytes uploaded so far, summed over all replicas — the
    /// DCLS protocol transfers every input once *per replica*, so this is
    /// `N ×` the logical upload volume.
    pub fn bytes_uploaded(&self) -> u64 {
        self.bytes_uploaded
    }

    /// Device→host bytes read back so far, summed over all replicas (every
    /// read-back fetches all N copies for the compare/vote).
    pub fn bytes_read_back(&self) -> u64 {
        self.bytes_read_back
    }
}

impl GpuSession for RedundantSession<'_, '_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        let b = self.exec.alloc_words(words)?;
        self.buffers.push(b);
        Ok(BufId(self.buffers.len() - 1))
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        let b = self.buffers[buf.0].clone();
        self.exec.write_u32(&b, data)?;
        self.bytes_uploaded += 4 * data.len() as u64 * u64::from(self.exec.replicas());
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        let b = self.buffers[buf.0].clone();
        self.exec.write_f32(&b, data)?;
        self.bytes_uploaded += 4 * data.len() as u64 * u64::from(self.exec.replicas());
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        // Disjoint field borrows: the executor materializes each replica's
        // parameter words into its reusable scratch while reading the
        // session's buffer table in place — no per-launch clone of the
        // (potentially large) table, no per-replica parameter vector.
        let Self { exec, buffers, .. } = self;
        let replicas = exec.replicas() as usize;
        exec.launch_with(program, grid, block, shared_mem_bytes, &mut |r, out| {
            for p in params {
                match *p {
                    SParam::Buf(b) | SParam::BufOffset(b, _) => {
                        let rb = &buffers[b.0];
                        if rb.replicas() != replicas {
                            return Err(RedundancyError::BufferArity {
                                buffer: rb.replicas(),
                                executor: replicas,
                            });
                        }
                        let offset = match *p {
                            SParam::BufOffset(_, w) => w,
                            _ => 0,
                        };
                        out.push(rb.ptr(r).offset_words(offset).0);
                    }
                    SParam::U32(v) => out.push(v),
                    SParam::I32(v) => out.push(v as u32),
                    SParam::F32(v) => out.push(v.to_bits()),
                }
            }
            Ok(())
        })?;
        self.pending = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        if self.pending {
            self.exec.sync()?;
            self.pending = false;
        }
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.sync()?;
        self.bytes_read_back += 4 * words as u64 * u64::from(self.exec.replicas());
        let Self { exec, buffers, .. } = self;
        let vote = exec.read_vote_u32(&buffers[buf.0], words)?;
        match vote.outcome {
            VoteOutcome::Unanimous => Ok(vote.value),
            outcome => match self.on_mismatch {
                MismatchPolicy::Fail => Err(SessionError::ReplicaMismatch {
                    first_word: outcome.first_disagreement().expect("not unanimous"),
                }),
                MismatchPolicy::Record => {
                    if outcome.is_corrected() {
                        self.corrected_reads += 1;
                    } else {
                        self.tied_reads += 1;
                    }
                    if self.first_mismatch.is_none() {
                        self.first_mismatch = outcome.first_disagreement();
                    }
                    Ok(vote.value)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::builder::KernelBuilder;
    use higpu_sim::config::GpuConfig;

    fn double_kernel() -> Arc<Program> {
        let mut b = KernelBuilder::new("double");
        let buf = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(buf, i);
        let v = b.ldg(a, 0);
        let d = b.iadd(v, v);
        b.stg(a, 0, d);
        b.build().expect("valid").into_shared()
    }

    #[test]
    fn solo_and_redundant_sessions_agree() {
        let prog = double_kernel();
        let data: Vec<u32> = (0..64).collect();

        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut solo = SoloSession::new(&mut gpu);
        let b = solo.alloc_words(64).expect("alloc");
        solo.write_u32(b, &data).expect("write");
        solo.launch(&prog, Dim3::x(2), Dim3::x(32), 0, &[SParam::Buf(b)])
            .expect("launch");
        let solo_out = solo.read_u32(b, 64).expect("read");

        let mut gpu2 = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu2, RedundancyMode::srrs_default(6)).expect("mode");
        let mut red = RedundantSession::new(&mut exec);
        let b = red.alloc_words(64).expect("alloc");
        red.write_u32(b, &data).expect("write");
        red.launch(&prog, Dim3::x(2), Dim3::x(32), 0, &[SParam::Buf(b)])
            .expect("launch");
        let red_out = red.read_u32(b, 64).expect("read");

        assert_eq!(solo_out, red_out);
        assert_eq!(solo_out[5], 10);
        // DCLS byte accounting: 64 words uploaded and read back, twice (one
        // transfer per replica in each direction).
        assert_eq!(red.bytes_uploaded(), 64 * 4 * 2);
        assert_eq!(red.bytes_read_back(), 64 * 4 * 2);
    }

    #[test]
    fn strict_session_fails_on_mismatch_but_tolerant_records_it() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let mut s = RedundantSession::new(&mut exec);
        let b = s.alloc_words(8).expect("alloc");
        s.write_u32(b, &[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        // Corrupt replica 1 behind the session's back (simulating a fault).
        let p1 = s.buffers[0].ptr(1);
        s.exec.gpu_mut().write_u32(p1, &[9]);
        let err = s.read_u32(b, 8).expect_err("strict must fail");
        assert_eq!(err, SessionError::ReplicaMismatch { first_word: 0 });

        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let mut s = RedundantSession::tolerant(&mut exec);
        let b = s.alloc_words(8).expect("alloc");
        s.write_u32(b, &[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        let p1 = s.buffers[0].ptr(1);
        s.exec.gpu_mut().write_u32(p1, &[9]);
        let out = s.read_u32(b, 8).expect("tolerant continues");
        assert_eq!(out[0], 1, "replica 0's data is handed back");
        assert_eq!(s.mismatched_reads(), 1);
        assert_eq!(s.tied_reads(), 1, "a 2-replica disagreement always ties");
        assert_eq!(s.corrected_reads(), 0);
        assert_eq!(s.first_mismatch(), Some(0));
    }

    #[test]
    fn tolerant_tmr_session_returns_the_voted_value() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4],
            },
        )
        .expect("mode");
        let mut s = RedundantSession::tolerant(&mut exec);
        let b = s.alloc_words(8).expect("alloc");
        s.write_u32(b, &[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        // Corrupt replica 0 — the classic DCLS session would hand back the
        // *corrupted* copy; the voter must restore the clean data.
        let p0 = s.buffers[0].ptr(0);
        s.exec.gpu_mut().write_u32(p0, &[99]);
        let out = s.read_u32(b, 8).expect("tolerant continues");
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8], "2-of-3 vote corrects");
        assert_eq!(s.corrected_reads(), 1);
        assert_eq!(s.tied_reads(), 0);
        assert_eq!(s.mismatched_reads(), 1);
        assert_eq!(s.first_mismatch(), Some(0));

        // A strict TMR session still fail-stops on any dissent.
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4],
            },
        )
        .expect("mode");
        let mut s = RedundantSession::new(&mut exec);
        let b = s.alloc_words(8).expect("alloc");
        s.write_u32(b, &[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        let p0 = s.buffers[0].ptr(0);
        s.exec.gpu_mut().write_u32(p0, &[99]);
        let err = s.read_u32(b, 8).expect_err("strict fails on dissent");
        assert_eq!(err, SessionError::ReplicaMismatch { first_word: 0 });
    }
}
