//! The workload registry: name → factory, with a scale knob.
//!
//! Registration is explicit (no global state, no link-time magic): each
//! benchmark module exposes a `register` function, and aggregators
//! (`higpu_rodinia::register_all`, [`crate::synthetic::register`]) populate
//! a registry the caller owns. The fault-campaign engine, the COTS model
//! and the benches all select workloads by name from the same registry.

use crate::workload::Workload;
use std::fmt;

/// The input scale a factory builds a workload at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Paper-sized inputs (figures, end-to-end experiments).
    Full,
    /// Small fixed grids for fault-injection campaigns: thousands of trials
    /// must fit in the campaign's small device image and finish fast, while
    /// still exercising every kernel of the benchmark.
    Campaign,
}

impl Scale {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Campaign => "campaign",
        }
    }
}

/// Builds one workload instance at the requested scale.
pub type WorkloadFactory = fn(Scale) -> Box<dyn Workload>;

/// Registers a workload type that follows the standard two-scale
/// convention: `Default` builds the paper-sized instance, `campaign()` the
/// small fixed grid. One definition of the scale dispatch instead of a
/// copy per benchmark module:
///
/// ```
/// use higpu_workloads::{register_scaled, synthetic::IteratedFma, WorkloadRegistry};
///
/// let mut reg = WorkloadRegistry::new();
/// register_scaled!(reg, "iterated_fma", IteratedFma);
/// assert!(reg.build("iterated_fma", higpu_workloads::Scale::Campaign).is_some());
/// ```
#[macro_export]
macro_rules! register_scaled {
    ($reg:expr, $name:literal, $ty:ty) => {
        $reg.register($name, |scale| match scale {
            $crate::Scale::Full => Box::new(<$ty>::default()),
            $crate::Scale::Campaign => Box::new(<$ty>::campaign()),
        })
    };
}

/// One named entry of a [`WorkloadRegistry`].
#[derive(Clone, Copy)]
pub struct WorkloadEntry {
    name: &'static str,
    factory: WorkloadFactory,
}

impl WorkloadEntry {
    /// Registered workload name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds the workload at `scale`.
    pub fn build(&self, scale: Scale) -> Box<dyn Workload> {
        (self.factory)(scale)
    }
}

impl fmt::Debug for WorkloadEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A name → factory map of workloads, in registration order (so sweep
/// reports keep a stable, deterministic row order).
#[derive(Debug, Default)]
pub struct WorkloadRegistry {
    entries: Vec<WorkloadEntry>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `name`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — two workloads claiming one name is a
    /// wiring bug, not a runtime condition.
    pub fn register(&mut self, name: &'static str, factory: WorkloadFactory) {
        assert!(
            !self.entries.iter().any(|e| e.name == name),
            "workload '{name}' registered twice"
        );
        self.entries.push(WorkloadEntry { name, factory });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The entries, in registration order.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Builds the named workload at `scale`; `None` for unknown names.
    pub fn build(&self, name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.build(scale))
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::IteratedFma;

    fn fma_factory(scale: Scale) -> Box<dyn Workload> {
        Box::new(match scale {
            Scale::Full => IteratedFma::default(),
            Scale::Campaign => IteratedFma::campaign(),
        })
    }

    #[test]
    fn register_and_build_round_trip() {
        let mut reg = WorkloadRegistry::new();
        assert!(reg.is_empty());
        reg.register("iterated_fma", fma_factory);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.names(), vec!["iterated_fma"]);
        let w = reg.build("iterated_fma", Scale::Campaign).expect("known");
        assert_eq!(w.name(), "iterated_fma");
        assert!(reg.build("nope", Scale::Full).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = WorkloadRegistry::new();
        reg.register("iterated_fma", fma_factory);
        reg.register("iterated_fma", fma_factory);
    }
}
