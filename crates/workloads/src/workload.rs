//! The [`Workload`] trait: a deterministic GPU computation with a CPU
//! reference, runnable in any [`crate::session::GpuSession`].

use crate::session::{GpuSession, SessionError};
use std::fmt;

/// Output comparison tolerance for verification against the CPU reference.
///
/// Replica-vs-replica comparison is always bitwise (that is the DCLS safety
/// mechanism); tolerances only apply to GPU-vs-CPU-reference verification,
/// where accumulation order may legitimately differ (as between CUDA and
/// C++ in the original Rodinia).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Outputs are integers/exact words.
    Exact,
    /// Outputs are `f32` values compared with relative/absolute tolerance.
    Approx {
        /// Relative tolerance.
        rel: f32,
        /// Absolute tolerance.
        abs: f32,
    },
}

impl Tolerance {
    /// Default float tolerance.
    pub fn approx() -> Self {
        Tolerance::Approx {
            rel: 1e-4,
            abs: 1e-5,
        }
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// First failing word index.
    pub index: usize,
    /// Produced word.
    pub got: u32,
    /// Expected word.
    pub expected: u32,
    /// Total failing words.
    pub mismatches: usize,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output differs from reference at word {} (got 0x{:08x}, expected 0x{:08x}; {} total mismatches)",
            self.index, self.got, self.expected, self.mismatches
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `got` against `expected` under `tol`.
///
/// # Errors
///
/// Returns the first mismatch (and the mismatch count) on failure.
pub fn verify_words(got: &[u32], expected: &[u32], tol: Tolerance) -> Result<(), VerifyError> {
    let mut first: Option<(usize, u32, u32)> = None;
    let mut mismatches = 0usize;
    for (i, (&g, &e)) in got.iter().zip(expected.iter()).enumerate() {
        let ok = match tol {
            Tolerance::Exact => g == e,
            Tolerance::Approx { rel, abs } => {
                let (fg, fe) = (f32::from_bits(g), f32::from_bits(e));
                if fg.is_nan() && fe.is_nan() {
                    true
                } else {
                    let diff = (fg - fe).abs();
                    diff <= abs || diff <= rel * fe.abs().max(fg.abs())
                }
            }
        };
        if !ok {
            mismatches += 1;
            if first.is_none() {
                first = Some((i, g, e));
            }
        }
    }
    if got.len() != expected.len() {
        mismatches += got.len().abs_diff(expected.len());
        if first.is_none() {
            first = Some((got.len().min(expected.len()), 0, 0));
        }
    }
    match first {
        None => Ok(()),
        Some((index, got, expected)) => Err(VerifyError {
            index,
            got,
            expected,
            mismatches,
        }),
    }
}

/// Default [`Workload::ftti_multiplier`]: the watchdog budget every
/// workload gets unless it declares its own. Eight fault-free makespans is
/// generous for legitimate corrupted-but-terminating runs (extra
/// divergence, a few perturbed loop trips) while a runaway loop (counter
/// sign-flip → ~2³¹ iterations) blows it promptly.
pub const DEFAULT_FTTI_MULTIPLIER: u64 = 8;

/// Mined [`Workload::ftti_multiplier`] for short-tailed workloads.
///
/// The campaign telemetry histograms (`BENCH_campaign.json`, `telemetry`
/// section) record the corrupted-but-terminating makespan distribution per
/// workload; mining the default sweep showed p99.9 staying ≤ 2.9× the
/// fault-free makespan for 14 of 17 registry workloads (median 2.42×). A
/// 3× budget therefore clears every legitimate corrupted-but-terminating
/// run of those workloads with the same detection behaviour as the flat
/// default while reclaiming ~5× of watchdog slack. The long-tailed
/// outliers — `lud` (mined p99.9 7.28×), `myocyte` (4.99×) and `nw`
/// (4.59×) — keep [`DEFAULT_FTTI_MULTIPLIER`]; their tails come from
/// corrupted iteration structure (perturbed elimination sweeps, ODE
/// retries, wavefront passes), not runaway loops, so tightening them
/// would misclassify legitimate runs as hangs. Detection-rate invariance
/// under the mined budgets is fenced in
/// `crates/bench/tests/ftti_budgets.rs`.
pub const MINED_FTTI_MULTIPLIER: u64 = 3;

/// A workload: deterministic inputs, a GPU host program and a CPU reference.
///
/// `Sync` because campaign workers share one workload description across
/// threads (each worker drives its own private GPU; the workload itself is
/// immutable configuration). Rodinia benchmarks, synthetic stress kernels
/// and campaign workloads all implement this one trait — the same host
/// program runs solo, redundantly, and inside fault campaigns.
pub trait Workload: fmt::Debug + Sync {
    /// Workload name (matches the paper's figures for Rodinia benchmarks).
    fn name(&self) -> &'static str;

    /// Runs the host program in `session`; returns the output words.
    ///
    /// # Errors
    ///
    /// Propagates [`SessionError`] from the backend.
    fn run(&self, session: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError>;

    /// CPU reference output (words).
    fn reference(&self) -> Vec<u32>;

    /// GPU-vs-reference comparison tolerance.
    fn tolerance(&self) -> Tolerance;

    /// Verifies a GPU output against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch on failure.
    fn verify(&self, out: &[u32]) -> Result<(), VerifyError> {
        verify_words(out, &self.reference(), self.tolerance())
    }

    /// The workload's fault-tolerant-time-interval budget, expressed as a
    /// multiple of its fault-free redundant makespan: the DCLS host's
    /// deadline monitor declares a trial *detected* (hung replica / timing
    /// violation) once `ftti_multiplier() × fault-free makespan` cycles
    /// (plus fixed slack) elapse without completion. Campaign engines
    /// enforce this per trial (`higpu_faults::campaign::ftti_deadline`).
    ///
    /// Workloads with long-tailed corrupted-but-legitimate runtimes may
    /// declare a larger budget; hard-real-time kernels with tight FTTIs a
    /// smaller one. The default, [`DEFAULT_FTTI_MULTIPLIER`], is the
    /// validated campaign-wide setting.
    fn ftti_multiplier(&self) -> u64 {
        DEFAULT_FTTI_MULTIPLIER
    }
}

/// Wraps `f32` outputs into words for [`Workload::reference`].
pub fn f32s_to_words(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_exact_catches_mismatch() {
        let got = [1u32, 2, 3];
        let expected = [1u32, 9, 3];
        let err = verify_words(&got, &expected, Tolerance::Exact).expect_err("mismatch");
        assert_eq!(err.index, 1);
        assert_eq!(err.mismatches, 1);
    }

    #[test]
    fn verify_approx_allows_small_drift() {
        let got = f32s_to_words(&[1.0, 2.00001]);
        let expected = f32s_to_words(&[1.0, 2.0]);
        verify_words(&got, &expected, Tolerance::approx()).expect("within tolerance");
        let far = f32s_to_words(&[1.0, 2.1]);
        assert!(verify_words(&far, &expected, Tolerance::approx()).is_err());
    }

    #[test]
    fn verify_length_mismatch_fails() {
        let got = [1u32, 2];
        let expected = [1u32, 2, 3];
        assert!(verify_words(&got, &expected, Tolerance::Exact).is_err());
    }

    #[test]
    fn nan_matches_nan_in_approx_mode() {
        let got = f32s_to_words(&[f32::NAN]);
        let expected = f32s_to_words(&[f32::NAN]);
        verify_words(&got, &expected, Tolerance::approx()).expect("NaN == NaN for verification");
    }
}
