//! Proves `RedundantSession::launch` is allocation-light: a counting
//! global allocator observes steady-state launches and asserts that the
//! per-launch allocation count is (a) small and (b) **independent of the
//! session's buffer-table size** — the regression fence for the
//! scratch-based rework (the session used to clone its whole `RBuf` table
//! and materialize a fresh `RParam` vector per launch, so launches
//! allocated O(buffers) each).

use higpu_core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{GpuSession, RedundantSession, SParam};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn touch_kernel() -> Arc<Program> {
    let mut b = KernelBuilder::new("touch");
    let out = b.param(0);
    let i = b.global_tid_x();
    let a = b.addr_w(out, i);
    let v = b.imul(i, 3u32);
    b.stg(a, 0, v);
    b.build().expect("valid").into_shared()
}

/// Allocations across `launches` steady-state launches of a session
/// holding `buffers` logical buffers, with `params` buffer parameters per
/// launch.
fn allocations_per_launch(buffers: usize, launches: u64) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
    let prog = touch_kernel();
    let mut session = RedundantSession::tolerant(&mut exec);
    let mut ids = Vec::new();
    for _ in 0..buffers {
        ids.push(session.alloc_words(64).expect("alloc"));
    }
    let params = [SParam::Buf(ids[0]), SParam::Buf(ids[buffers - 1])];
    // Warm up: first launch grows the executor's parameter scratch and the
    // launch bookkeeping vectors.
    session
        .launch(&prog, Dim3::x(1), Dim3::x(32), 0, &params)
        .expect("warm-up launch");
    session.sync().expect("warm-up sync");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..launches {
        session
            .launch(&prog, Dim3::x(1), Dim3::x(32), 0, &params)
            .expect("steady-state launch");
        session.sync().expect("sync");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before) as f64 / launches as f64
}

#[test]
fn steady_state_launches_are_allocation_light_and_buffer_count_independent() {
    let small = allocations_per_launch(2, 16);
    let large = allocations_per_launch(64, 16);
    // (a) Independent of the buffer-table size: the pre-rework session
    // cloned all RBufs (one Vec + one DevPtr Vec each) per launch, which
    // would show up here as ~2 x 62 extra allocations per launch.
    assert!(
        (large - small).abs() < 2.0,
        "per-launch allocations must not scale with session buffers: \
         {small:.1} with 2 buffers vs {large:.1} with 64"
    );
    // (b) Small in absolute terms. The remaining per-launch allocations are
    // inherent to the device interface: per replica a params Vec + Arc'd
    // params/attrs, the trace tag string, and trace/block records. Bound
    // them loosely so legitimate simulator changes don't trip the fence,
    // while an O(buffers) or O(params²) regression still does.
    assert!(
        small < 40.0,
        "steady-state redundant launch allocates too much: {small:.1}/launch"
    );
}
