//! Fault-injection hooks.
//!
//! The simulator calls into a [`FaultHook`] at the two architecturally
//! relevant corruption points of the paper's analysis:
//!
//! * **computation results** — every value produced by an execution unit and
//!   every value written to memory passes through
//!   [`FaultHook::corrupt_value`], allowing transient and permanent SM-core
//!   faults (including common-cause faults striking several SMs at once);
//! * **the global kernel scheduler** — every block-to-SM assignment passes
//!   through [`FaultHook::reroute_block`], allowing scheduler misrouting
//!   faults (paper Sec. IV-C).
//!
//! Concrete fault models live in the `higpu-faults` crate.

use crate::isa::ExecUnit;
use crate::kernel::KernelId;

/// Where and when a value is being produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCtx {
    /// SM executing the instruction.
    pub sm: usize,
    /// Current cycle.
    pub cycle: u64,
    /// Kernel owning the block.
    pub kernel: KernelId,
    /// Linear block index.
    pub block: u32,
    /// Warp index within the block.
    pub warp: usize,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Functional unit producing the value.
    pub unit: ExecUnit,
}

/// Injection interface; the default implementation of every method is a
/// no-op, so hooks override only the corruption points they model.
pub trait FaultHook {
    /// Cheap per-instruction arming test: returns `true` if this hook *may*
    /// corrupt values produced in context `ctx`. When `false`, the execution
    /// engine skips the per-lane [`FaultHook::corrupt_value`] calls for the
    /// whole instruction — the hot-path fast exit for trials whose fault
    /// window is closed.
    ///
    /// The default is conservatively `true` so hooks that only override
    /// `corrupt_value` keep their pre-fast-path behaviour. Overriding
    /// implementations must guarantee that `corrupt_value` is the identity
    /// whenever `armed` returns `false`.
    ///
    /// Beyond skipping corruption calls, `armed` also gates the
    /// interpreter's value fast paths (uniform scalarization, full-mask row
    /// writes, coalesced row copies — see [`crate::exec`]): while a hook is
    /// armed, every instruction runs the per-lane masked loop so the hook
    /// observes exactly the materialized lane values. `armed` takes `&self`
    /// and must be a pure query — it is the *only* hook method that may be
    /// called for an instruction (fast paths make no further calls when it
    /// returns `false`), so it must not carry observable side effects.
    fn armed(&self, _ctx: &FaultCtx) -> bool {
        true
    }

    /// May corrupt a value produced for `lane`. Called for every destination
    /// register write and every stored word.
    fn corrupt_value(&mut self, _ctx: &FaultCtx, _lane: usize, value: u32) -> u32 {
        value
    }

    /// May reroute a block assignment decided by the kernel scheduler.
    ///
    /// `fits` reports whether a candidate SM has capacity for the block; the
    /// returned SM must satisfy `fits` or the assignment is dropped for this
    /// round (the block is retried later).
    fn reroute_block(
        &mut self,
        _kernel: KernelId,
        _block: u32,
        chosen_sm: usize,
        _num_sms: usize,
        _fits: &dyn Fn(usize) -> bool,
    ) -> usize {
        chosen_sm
    }
}

/// The default hook: a fault-free machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn armed(&self, _ctx: &FaultCtx) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_identity() {
        let ctx = FaultCtx {
            sm: 0,
            cycle: 0,
            kernel: KernelId(0),
            block: 0,
            warp: 0,
            pc: 0,
            unit: ExecUnit::Alu,
        };
        let mut h = NoFaults;
        assert!(!h.armed(&ctx), "the fault-free machine is never armed");
        assert_eq!(h.corrupt_value(&ctx, 3, 0xabcd), 0xabcd);
        assert_eq!(h.reroute_block(KernelId(0), 0, 2, 6, &|_| true), 2);
    }

    #[test]
    fn default_armed_is_conservative() {
        struct OnlyCorrupt;
        impl FaultHook for OnlyCorrupt {
            fn corrupt_value(&mut self, _ctx: &FaultCtx, _lane: usize, v: u32) -> u32 {
                v ^ 1
            }
        }
        let ctx = FaultCtx {
            sm: 0,
            cycle: 0,
            kernel: KernelId(0),
            block: 0,
            warp: 0,
            pc: 0,
            unit: ExecUnit::Alu,
        };
        // A hook that overrides only corrupt_value must still be consulted.
        assert!(OnlyCorrupt.armed(&ctx));
    }
}
