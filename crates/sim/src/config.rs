//! Hardware configuration of the simulated GPU.
//!
//! The default configuration ([`GpuConfig::paper_6sm`]) mirrors the setup of
//! the DATE 2019 evaluation: a 6-SM GPU comparable to the GPGPU-Sim model and
//! to the GTX 1050 Ti used for the COTS experiment (same SM count).

/// Warp scheduling policy of the SM-internal schedulers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WarpSchedPolicy {
    /// Greedy-then-oldest: keep issuing the same warp while it is ready,
    /// fall back to the oldest ready warp (GPGPU-Sim's GTO, the default).
    #[default]
    Gto,
    /// Loose round-robin: rotate over ready warps for fairness.
    Lrr,
}

/// Which main-loop implementation [`crate::gpu::Gpu::run_until`] uses.
///
/// Both cores produce **bit-identical** traces, statistics and memory
/// images: the event core visits exactly the cycles the stepping core
/// visits and invokes the (stateful) scheduler policy at exactly the same
/// points — it merely skips the per-event work that the stepping core
/// proves is a no-op (SMs with no warp ready at the current cycle, per-step
/// rescans of the kernel queue). The stepping core is retained as the
/// cross-validation oracle; `tests/cross_core.rs` diffs the two per issued
/// instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoreKind {
    /// Two-level event-queue core (the default): a device-level wake queue
    /// visits only SMs with a warp ready at the current cycle, and kernel
    /// arrivals are scheduled events instead of per-step scans.
    #[default]
    Event,
    /// The original exhaustive core: every SM is offered an issue slot at
    /// every visited cycle. Kept as the oracle for determinism
    /// cross-checks (`--core stepping`).
    Stepping,
}

/// Timing parameters (in GPU core cycles) for the execution pipelines and
/// memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingConfig {
    /// Latency of simple integer/float ALU operations.
    pub alu_latency: u32,
    /// Latency of special-function-unit operations (sqrt, exp, log, rcp,
    /// and floating-point division, which issues to the SFU).
    pub sfu_latency: u32,
    /// L1 data cache hit latency.
    pub l1_hit_latency: u32,
    /// Additional latency of an L2 hit (on top of the L1 path).
    pub l2_hit_latency: u32,
    /// Additional latency of a DRAM access (on top of the L2 path).
    pub dram_latency: u32,
    /// Shared-memory access latency.
    pub shared_latency: u32,
    /// Cycles a DRAM channel is occupied by one 32-byte transaction
    /// (inverse bandwidth).
    pub dram_service_cycles: u32,
    /// Latency of an atomic read-modify-write performed at the L2.
    pub atomic_latency: u32,
    /// Cycles to release a block-wide barrier once the last warp arrives.
    pub barrier_latency: u32,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            alu_latency: 4,
            sfu_latency: 16,
            l1_hit_latency: 28,
            l2_hit_latency: 120,
            dram_latency: 220,
            shared_latency: 24,
            dram_service_cycles: 2,
            atomic_latency: 140,
            barrier_latency: 2,
        }
    }
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes. Must be a power of two.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// DRAM subsystem configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (each with its own service queue).
    pub channels: usize,
    /// Address interleaving granularity in bytes.
    pub interleave_bytes: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            interleave_bytes: 256,
        }
    }
}

/// Full configuration of the simulated GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (fixed at 32 in all presets).
    pub warp_size: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// 32-bit registers per SM shared by all resident threads.
    pub registers_per_sm: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Warp schedulers per SM (instructions issued per SM per cycle).
    pub schedulers_per_sm: usize,
    /// Warp scheduling policy within each SM.
    pub warp_scheduler: WarpSchedPolicy,
    /// Main-loop implementation (event-queue core vs. stepping oracle).
    pub core: CoreKind,
    /// Size of the device global memory in bytes.
    pub global_mem_bytes: usize,
    /// Cycles between consecutive kernel arrivals at the GPU front-end
    /// (host dispatch is intrinsically serial; see paper Sec. IV-A).
    pub dispatch_gap_cycles: u64,
    /// Core clock in GHz, used only to convert cycles to wall time in
    /// end-to-end (COTS) models.
    pub clock_ghz: f64,
    /// Pipeline and memory timing.
    pub timing: TimingConfig,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Telemetry event-ring capacity: `Some(n)` preallocates an `n`-event
    /// [`higpu_telemetry::EventRing`] the device records kernel/block
    /// lifecycle, snapshot/restore, fault and quarantine events into (see
    /// [`crate::gpu::Gpu::telemetry_events`]). `None` — the default in
    /// every preset — records nothing and reduces each hook to a branch;
    /// recording is observationally invisible either way (fenced by
    /// `tests/telemetry_fence.rs` at the workspace root).
    pub telemetry_capacity: Option<usize>,
}

impl GpuConfig {
    /// The 6-SM configuration used throughout the paper's evaluation
    /// (GPGPU-Sim model and GTX 1050 Ti both have 6 SMs).
    pub fn paper_6sm() -> Self {
        Self {
            num_sms: 6,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            registers_per_sm: 32 * 1024,
            shared_mem_per_sm: 48 * 1024,
            schedulers_per_sm: 2,
            warp_scheduler: WarpSchedPolicy::Gto,
            core: CoreKind::Event,
            global_mem_bytes: 64 * 1024 * 1024,
            dispatch_gap_cycles: 7000, // ~5 us at 1.4 GHz
            clock_ghz: 1.4,
            timing: TimingConfig::default(),
            l1: CacheConfig {
                sets: 32,
                ways: 4,
                line_bytes: 128,
            },
            l2: CacheConfig {
                sets: 512,
                ways: 8,
                line_bytes: 128,
            },
            dram: DramConfig::default(),
            telemetry_capacity: None,
        }
    }

    /// A wider 10-SM device: the paper's per-SM microarchitecture scaled to
    /// more SMs, used by N ≥ 5 redundancy experiments (5MR needs at least
    /// one SM per replica under SLICE, and five pairwise-distinct SRRS
    /// start SMs are roomier on ten SMs than six).
    pub fn wide_10sm() -> Self {
        Self {
            num_sms: 10,
            ..Self::paper_6sm()
        }
    }

    /// A tiny 2-SM configuration for unit tests (fast, small residency).
    pub fn tiny_2sm() -> Self {
        Self {
            num_sms: 2,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 4,
            max_threads_per_sm: 256,
            registers_per_sm: 8 * 1024,
            shared_mem_per_sm: 16 * 1024,
            global_mem_bytes: 4 * 1024 * 1024,
            dispatch_gap_cycles: 200,
            ..Self::paper_6sm()
        }
    }

    /// Effective device capacity once `quarantined` SMs have been removed
    /// from service: the SM count admission control and limp-home
    /// re-planning must budget against (never the nominal `num_sms`).
    pub fn effective_sms(&self, quarantined: usize) -> usize {
        self.num_sms.saturating_sub(quarantined)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be non-zero".into());
        }
        if self.warp_size == 0 || self.warp_size > 32 {
            return Err("warp_size must be in 1..=32".into());
        }
        if !self.l1.line_bytes.is_power_of_two() || !self.l2.line_bytes.is_power_of_two() {
            return Err("cache line sizes must be powers of two".into());
        }
        if !self.l1.sets.is_power_of_two() || !self.l2.sets.is_power_of_two() {
            return Err("cache set counts must be powers of two".into());
        }
        if self.dram.channels == 0 {
            return Err("dram.channels must be non-zero".into());
        }
        if self.max_blocks_per_sm == 0 || self.max_warps_per_sm == 0 {
            return Err("per-SM residency limits must be non-zero".into());
        }
        if self.max_warps_per_sm > 64 {
            // The SM warp schedulers track per-block ready sets in a u64
            // bitmask (warp index == bit index).
            return Err("max_warps_per_sm must be at most 64".into());
        }
        if !self.global_mem_bytes.is_multiple_of(4) {
            return Err("global_mem_bytes must be word aligned".into());
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::paper_6sm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_valid_and_has_6_sms() {
        let cfg = GpuConfig::paper_6sm();
        cfg.validate().expect("paper preset must validate");
        assert_eq!(cfg.num_sms, 6);
        assert_eq!(cfg.warp_size, 32);
    }

    #[test]
    fn tiny_preset_is_valid() {
        GpuConfig::tiny_2sm().validate().expect("tiny preset");
    }

    #[test]
    fn wide_preset_is_valid_and_has_10_sms() {
        let cfg = GpuConfig::wide_10sm();
        cfg.validate().expect("wide preset must validate");
        assert_eq!(cfg.num_sms, 10);
        assert_eq!(
            cfg.max_threads_per_sm,
            GpuConfig::paper_6sm().max_threads_per_sm,
            "same per-SM microarchitecture, just more SMs"
        );
    }

    #[test]
    fn effective_capacity_subtracts_quarantined_sms() {
        let cfg = GpuConfig::wide_10sm();
        assert_eq!(cfg.effective_sms(0), 10);
        assert_eq!(cfg.effective_sms(3), 7);
        assert_eq!(cfg.effective_sms(99), 0, "saturates, never underflows");
    }

    #[test]
    fn cache_capacity() {
        let c = CacheConfig {
            sets: 32,
            ways: 4,
            line_bytes: 128,
        };
        assert_eq!(c.capacity(), 16 * 1024);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.num_sms = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::paper_6sm();
        cfg.l1.line_bytes = 96;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::paper_6sm();
        cfg.dram.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::paper_6sm();
        cfg.warp_size = 64;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::paper_6sm();
        cfg.max_warps_per_sm = 65;
        assert!(cfg.validate().is_err(), "ready masks are 64 bits wide");
    }

    #[test]
    fn event_core_is_the_default_with_stepping_as_oracle() {
        assert_eq!(GpuConfig::default().core, CoreKind::Event);
        assert_eq!(CoreKind::default(), CoreKind::Event);
        let mut cfg = GpuConfig::paper_6sm();
        cfg.core = CoreKind::Stepping;
        cfg.validate()
            .expect("oracle core is a valid configuration");
    }
}
