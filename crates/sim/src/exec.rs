//! Functional + timing execution of one warp instruction.
//!
//! [`step_warp`] interprets the pre-decoded instruction (see
//! [`crate::decode`]) at the warp's current PC for all active lanes, applies
//! fault-injection hooks to every produced value, and reports a
//! [`StepEffect`] that the SM turns into issue latency.
//!
//! # Fast paths
//!
//! Three families of fast paths cut the per-instruction cost without
//! changing a single architecturally visible bit:
//!
//! * **Uniform-value scalarization** — the warp tracks a bitmap of registers
//!   whose 32 lanes are known-identical ([`Warp::uniform`]). An operation
//!   whose sources are all uniform computes once and splats, instead of
//!   running the 32-wide row loop. Loads from a uniform address read one
//!   word; stores of a uniform value to a uniform address write one word.
//! * **Full-mask writes** — when `active == u32::MAX` the destination row
//!   is written directly instead of through the select-merge loop.
//! * **Stride-1 coalesced copies** — a full-mask load/store whose 32 lane
//!   addresses are word-aligned, stride-4 and fully in bounds becomes one
//!   row copy against the word-storage image
//!   ([`crate::mem::image::contiguous_row`]).
//!
//! Every fast path that produces register or memory values is gated on the
//! fault hook being **unarmed**: corruption hooks must observe exactly the
//! per-lane materialized values the masked loop produces, so an armed hook
//! forces the slow path for that instruction. Predicate writes are never
//! corrupted (matching the masked loop), so uniform compares stay scalar
//! even under an armed hook. Timing observables are preserved on all paths:
//! coalesced transactions, OOB accounting (one count per active lane) and
//! the dirty high-water mark are computed exactly as the masked loop would.

use crate::block::BlockDims;
use crate::decode::{DOp, DSrc};
use crate::fault::{FaultCtx, FaultHook};
use crate::isa::{ExecUnit, FloatOp, IntOp, SfuOp, SpecialReg};
use crate::kernel::KernelId;
use crate::mem::coalesce::{coalesce_into, Transaction, TxBuf, SECTOR_BYTES};
use crate::mem::image::{contiguous_row, load_word, store_word};
use crate::warp::{StackEntry, Warp, WarpState};

/// Per-lane target addresses of an atomic instruction (active lanes only),
/// stored inline so the hot path never touches the heap.
pub type LaneAddrs = crate::inline_vec::InlineVec<u32>;

/// What an issued instruction did, as seen by the SM timing model.
///
/// The enum itself is a small `Copy` tag: memory effects deposit their
/// per-instruction data (coalesced transactions, atomic lane addresses) in
/// the caller-provided scratch buffers of [`ExecCtx`] instead of carrying
/// them by value — returning a 32-entry inline buffer per instruction cost
/// a ~260-byte zero + copy on the hottest path in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEffect {
    /// A compute instruction on the given unit.
    Compute(ExecUnit),
    /// A global-memory access; the coalesced transactions are in
    /// [`ExecCtx::txs`] for the SM to forward to the memory system.
    GlobalMem,
    /// A shared-memory access (fixed latency, possibly bank-conflicted —
    /// conflicts are folded into the configured latency).
    SharedMem,
    /// A global atomic; the per-lane target addresses (active lanes only,
    /// serialized by the memory system) are in [`ExecCtx::atom_addrs`].
    Atomic,
    /// The warp arrived at a block-wide barrier.
    Barrier,
    /// The warp finished (all lanes exited).
    Finished,
}

/// Mutable machine context a warp needs while executing.
///
/// Not `Debug`: it borrows the whole device memory image and a `dyn` fault
/// hook, neither of which has a useful debug rendering.
#[allow(missing_debug_implementations)]
pub struct ExecCtx<'a> {
    /// Device global memory image (word storage, byte-addressed — see
    /// [`crate::mem::image`]).
    pub global_mem: &'a mut [u32],
    /// The block's shared memory (word storage, byte-addressed).
    pub shared_mem: &'a mut [u32],
    /// Kernel parameters.
    pub params: &'a [u32],
    /// Block geometry (CUDA built-ins).
    pub dims: BlockDims,
    /// SM executing the warp.
    pub sm_id: usize,
    /// Current cycle.
    pub cycle: u64,
    /// Kernel identifier (fault-context reporting).
    pub kernel: KernelId,
    /// Linear block index (fault-context reporting).
    pub block: u32,
    /// Fault-injection hook.
    pub fault: &'a mut dyn FaultHook,
    /// False when the installed hook is the fault-free default: the engine
    /// then skips fault-context construction and every virtual hook call —
    /// the no-fault fast path.
    pub fault_enabled: bool,
    /// Count of out-of-bounds accesses observed (kernel bugs or
    /// fault-corrupted addresses; reads return a poison value, writes are
    /// dropped).
    pub oob_accesses: &'a mut u64,
    /// High-water mark of global-memory bytes dirtied by stores/atomics,
    /// maintained so [`crate::gpu::Gpu::reset`] can zero only the touched
    /// prefix instead of the whole image.
    pub global_dirty: &'a mut u32,
    /// Scratch for coalesced transactions, filled when the returned effect
    /// is [`StepEffect::GlobalMem`]. Reused across instructions by the SM.
    pub txs: &'a mut TxBuf,
    /// Scratch for atomic lane addresses, filled when the returned effect
    /// is [`StepEffect::Atomic`]. Reused across instructions by the SM.
    pub atom_addrs: &'a mut LaneAddrs,
}

#[inline]
fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

#[inline]
fn b(v: f32) -> u32 {
    v.to_bits()
}

/// Copies the register row at base offset `base` (all 32 lanes) into a stack
/// array. Working on whole rows lets the ALU paths run fixed-trip,
/// branch-free lane loops that the compiler auto-vectorizes, instead of a
/// bounds-checked indexed access per lane behind an active-mask branch.
/// (Measured: the owned copy beats returning `&[u32; 32]` — with the borrow
/// the optimizer loses the no-alias guarantee against the destination row
/// and stops vectorizing the lane loops.)
#[inline]
fn reg_row(warp: &Warp, base: u32) -> [u32; 32] {
    let base = base as usize;
    warp.regs[base..base + 32]
        .try_into()
        .expect("register row within file")
}

/// Materializes a pre-decoded operand as a full row: a register row copy or
/// an immediate splat.
#[inline]
fn dsrc_row(warp: &Warp, s: DSrc) -> [u32; 32] {
    match s {
        DSrc::R(base) => reg_row(warp, base),
        DSrc::I(v) => [v; 32],
    }
}

/// Which access shape a global load/store fast-path decision established,
/// so the transaction emission can skip the generic coalescer's lane scans
/// when the shape already pins the exact sector set.
#[derive(Clone, Copy, PartialEq)]
enum MemPath {
    /// Arbitrary (or partially masked) lane addresses: run the coalescer.
    Gather,
    /// Every active lane at one address: a single sector transaction.
    Uniform,
    /// Full-mask word-aligned stride-4 row starting at `addrs[0]`.
    Row,
}

/// Emits the transactions of a full-mask stride-1 row access directly: the
/// 32 word accesses starting at word-aligned `addr0` touch exactly the
/// sectors spanning `addr0..addr0 + 128`, each of them hit — the same
/// sorted, de-duplicated set the generic coalescer produces.
#[inline]
fn row_sectors(addr0: u32, write: bool, out: &mut TxBuf) {
    out.clear();
    let lo = addr0 / SECTOR_BYTES;
    let hi = (addr0 + 124) / SECTOR_BYTES;
    for s in lo..=hi {
        out.push(Transaction {
            addr: s * SECTOR_BYTES,
            write,
        });
    }
}

/// Emits the single transaction of a uniform-address access (every active
/// lane inside one sector; the active mask is non-empty by the step_warp
/// entry invariant).
#[inline]
fn uniform_sector(addr: u32, write: bool, out: &mut TxBuf) {
    out.clear();
    out.push(Transaction {
        addr: addr / SECTOR_BYTES * SECTOR_BYTES,
        write,
    });
}

/// True when the register at row base `base` is tracked warp-uniform.
#[inline]
fn is_uniform(warp: &Warp, base: u32) -> bool {
    warp.is_uniform((base >> 5) as u16)
}

/// True when the operand is lane-invariant: an immediate, or a register
/// tracked warp-uniform.
#[inline]
fn dsrc_uniform(warp: &Warp, s: DSrc) -> bool {
    match s {
        DSrc::R(base) => is_uniform(warp, base),
        DSrc::I(_) => true,
    }
}

/// The single value of a uniform register (lane 0 — identical in all lanes
/// by the [`Warp::uniform`] invariant).
#[inline]
fn scalar(warp: &Warp, base: u32) -> u32 {
    warp.regs[base as usize]
}

/// The single value of a lane-invariant operand.
#[inline]
fn dsrc_scalar(warp: &Warp, s: DSrc) -> u32 {
    match s {
        DSrc::R(base) => scalar(warp, base),
        DSrc::I(v) => v,
    }
}

/// Full-mask row write: every lane takes `vals`. Clears the uniformity
/// claim (callers that know the row is a splat use [`scalar_write`]).
#[inline]
fn write_row(warp: &mut Warp, dbase: u32, vals: &[u32; 32]) {
    let base = dbase as usize;
    warp.regs[base..base + 32].copy_from_slice(vals);
    warp.clear_uniform((dbase >> 5) as u16);
}

/// Writes `vals` into the register row at `dbase` for `active` lanes only.
/// The select-style merge (unconditional store of a conditionally chosen
/// value) keeps the loop branchless; inactive lanes keep their old contents
/// bit-for-bit, exactly like the per-lane masked loop it replaces.
#[inline]
fn merge_row(warp: &mut Warp, dbase: u32, active: u32, vals: &[u32; 32]) {
    let base = dbase as usize;
    let row = &mut warp.regs[base..base + 32];
    for (lane, slot) in row.iter_mut().enumerate() {
        let keep = *slot;
        *slot = if active & (1 << lane) != 0 {
            vals[lane]
        } else {
            keep
        };
    }
    warp.clear_uniform((dbase >> 5) as u16);
}

/// Writes one scalar result for the active lanes: a full-mask write splats
/// all 32 lanes and records the destination as uniform; a partial mask
/// writes the active lanes and conservatively drops the claim (inactive
/// lanes may hold anything). Only valid on the unarmed path — a hook could
/// corrupt each lane differently.
#[inline]
fn scalar_write(warp: &mut Warp, dbase: u32, active: u32, v: u32) {
    let base = dbase as usize;
    if active == u32::MAX {
        warp.regs[base..base + 32].fill(v);
        warp.mark_uniform((dbase >> 5) as u16);
    } else {
        let row = &mut warp.regs[base..base + 32];
        for (lane, slot) in row.iter_mut().enumerate() {
            if active & (1 << lane) != 0 {
                *slot = v;
            }
        }
        warp.clear_uniform((dbase >> 5) as u16);
    }
}

fn eval_int(op: IntOp, a: u32, bb: u32) -> u32 {
    let (ia, ib) = (a as i32, bb as i32);
    match op {
        IntOp::Add => a.wrapping_add(bb),
        IntOp::Sub => a.wrapping_sub(bb),
        IntOp::Mul => a.wrapping_mul(bb),
        IntOp::Div => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_div(ib) as u32
            }
        }
        IntOp::Rem => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_rem(ib) as u32
            }
        }
        IntOp::Min => ia.min(ib) as u32,
        IntOp::Max => ia.max(ib) as u32,
        IntOp::And => a & bb,
        IntOp::Or => a | bb,
        IntOp::Xor => a ^ bb,
        IntOp::Shl => a.wrapping_shl(bb & 31),
        IntOp::Shr => a.wrapping_shr(bb & 31),
        IntOp::Sra => (ia.wrapping_shr(bb & 31)) as u32,
    }
}

fn eval_float(op: FloatOp, a: u32, bb: u32) -> u32 {
    let (fa, fb) = (f(a), f(bb));
    b(match op {
        FloatOp::Add => fa + fb,
        FloatOp::Sub => fa - fb,
        FloatOp::Mul => fa * fb,
        FloatOp::Div => fa / fb,
        FloatOp::Min => fa.min(fb),
        FloatOp::Max => fa.max(fb),
    })
}

fn eval_sfu(op: SfuOp, a: u32) -> u32 {
    let fa = f(a);
    b(match op {
        SfuOp::Sqrt => fa.sqrt(),
        SfuOp::Exp => fa.exp(),
        SfuOp::Log => fa.ln(),
        SfuOp::Rcp => 1.0 / fa,
        SfuOp::Sin => fa.sin(),
        SfuOp::Cos => fa.cos(),
        SfuOp::Abs => fa.abs(),
        SfuOp::Neg => -fa,
        SfuOp::Floor => fa.floor(),
    })
}

fn special_value(s: SpecialReg, dims: &BlockDims, sm_id: usize, thread_linear: u32) -> u32 {
    let (tx, ty, tz) = dims.tid(thread_linear);
    match s {
        SpecialReg::TidX => tx,
        SpecialReg::TidY => ty,
        SpecialReg::TidZ => tz,
        SpecialReg::CtaidX => dims.ctaid.0,
        SpecialReg::CtaidY => dims.ctaid.1,
        SpecialReg::CtaidZ => dims.ctaid.2,
        SpecialReg::NtidX => dims.ntid.x,
        SpecialReg::NtidY => dims.ntid.y,
        SpecialReg::NtidZ => dims.ntid.z,
        SpecialReg::NctaidX => dims.nctaid.x,
        SpecialReg::NctaidY => dims.nctaid.y,
        SpecialReg::NctaidZ => dims.nctaid.z,
        SpecialReg::LaneId => thread_linear % 32,
        SpecialReg::SmId => sm_id as u32,
    }
}

/// Executes one instruction of `warp`. The warp must be settled (see
/// [`Warp::settle`]) and have a non-empty active mask. `ops` is the
/// program's pre-decoded stream ([`crate::program::Program::decoded`]).
///
/// Returns the [`StepEffect`]; control-flow bookkeeping (PC update,
/// divergence) is fully handled here. The SM is responsible for translating
/// the effect into `ready_at` latency and barrier/finish bookkeeping.
///
/// # Panics
///
/// Panics (debug builds) if invoked on a warp with an empty active mask or
/// when the PC escapes the program, both of which indicate simulator bugs.
pub fn step_warp(warp: &mut Warp, ops: &[DOp], ctx: &mut ExecCtx<'_>) -> StepEffect {
    let top = *warp.stack.last().expect("running warp has a stack");
    let active = top.mask & warp.live;
    debug_assert!(active != 0, "step_warp on an inactive warp");
    let pc = top.pc;
    debug_assert!((pc as usize) < ops.len(), "pc {pc} out of program");
    let op = ops[pc as usize];
    warp.instrs += 1;

    // Fault hoisting: the fault-free machine builds no context and pays no
    // virtual call; an installed hook is asked once per instruction whether
    // it is armed, and only then are the per-lane corruption calls made.
    let fctx = if ctx.fault_enabled {
        Some(FaultCtx {
            sm: ctx.sm_id,
            cycle: ctx.cycle,
            kernel: ctx.kernel,
            block: ctx.block,
            warp: warp.warp_idx,
            pc,
            unit: op.unit(),
        })
    } else {
        None
    };
    let armed = match &fctx {
        Some(c) => ctx.fault.armed(c),
        None => false,
    };
    // Full-mask writes skip the select-merge; combined with `!armed` they
    // also unlock the splat/scalar fast paths.
    let full = active == u32::MAX;

    /// Applies the fault hook to a produced value only while armed.
    macro_rules! corrupt {
        ($lane:expr, $v:expr) => {{
            let v = $v;
            if armed {
                ctx.fault
                    .corrupt_value(fctx.as_ref().expect("armed implies ctx"), $lane, v)
            } else {
                v
            }
        }};
    }

    macro_rules! for_lanes {
        (|$lane:ident| $body:expr) => {
            for $lane in 0..32usize {
                if active & (1 << $lane) != 0 {
                    $body
                }
            }
        };
    }

    /// ALU pattern: compute the value for all 32 lanes unconditionally (the
    /// fixed-trip loop vectorizes; inactive-lane results are discarded by the
    /// merge), apply the fault hook to active lanes only when armed, then
    /// write the destination row — directly under a full mask, masked-merge
    /// otherwise. Active lanes see exactly the per-lane sequence the masked
    /// loop produced: compute, corrupt, write.
    macro_rules! alu {
        ($d:expr, |$lane:ident| $v:expr) => {{
            let mut out = [0u32; 32];
            for $lane in 0..32usize {
                out[$lane] = $v;
            }
            if armed {
                for_lanes!(|lane| {
                    out[lane] = corrupt!(lane, out[lane]);
                });
            }
            if full {
                write_row(warp, $d, &out);
            } else {
                merge_row(warp, $d, active, &out);
            }
        }};
    }

    /// Predicate-setter pattern: compute the outcome bit for all 32 lanes,
    /// then splice the active lanes into the predicate word (predicates are
    /// never fault-corrupted, matching the masked loop).
    macro_rules! setp {
        ($p:expr, |$lane:ident| $cond:expr) => {{
            let mut bits = 0u32;
            for $lane in 0..32usize {
                bits |= u32::from($cond) << $lane;
            }
            let pw = &mut warp.preds[usize::from($p)];
            *pw = (*pw & !active) | (bits & active);
        }};
    }

    /// Scalar predicate-setter: all active lanes share one outcome (uniform
    /// sources), so evaluate the comparison once. Valid even under an armed
    /// hook because predicates are never corrupted.
    macro_rules! setp_scalar {
        ($p:expr, $cond:expr) => {{
            let bits = if $cond { u32::MAX } else { 0 };
            let pw = &mut warp.preds[usize::from($p)];
            *pw = (*pw & !active) | (bits & active);
        }};
    }

    /// Load pattern shared by global and shared space: uniform-address
    /// scalar load, stride-1 row copy, or the per-lane masked loop. OOB
    /// accounting matches the masked loop on every path (one count per
    /// active lane; the row copy is in-bounds by construction).
    macro_rules! load_slow {
        ($mem:expr, $d:expr, $addrs:expr) => {{
            for_lanes!(|lane| {
                let v = load_word($mem, $addrs[lane], ctx.oob_accesses);
                let v = corrupt!(lane, v);
                warp.regs[$d as usize + lane] = v;
            });
            warp.clear_uniform(($d >> 5) as u16);
        }};
    }
    macro_rules! load {
        ($mem:expr, $d:expr, $addrs:expr, $abase:expr) => {{
            if !armed && is_uniform(warp, $abase) {
                let before = *ctx.oob_accesses;
                let v = load_word($mem, $addrs[0], ctx.oob_accesses);
                if *ctx.oob_accesses != before {
                    // The masked loop counts one OOB access per active lane.
                    *ctx.oob_accesses += u64::from(active.count_ones()) - 1;
                }
                scalar_write(warp, $d, active, v);
                MemPath::Uniform
            } else if !armed && full {
                match contiguous_row(&$addrs, $mem.len()) {
                    Some(base) => {
                        let dbase = $d as usize;
                        warp.regs[dbase..dbase + 32].copy_from_slice(&$mem[base..base + 32]);
                        warp.clear_uniform(($d >> 5) as u16);
                        MemPath::Row
                    }
                    None => {
                        load_slow!($mem, $d, $addrs);
                        MemPath::Gather
                    }
                }
            } else {
                load_slow!($mem, $d, $addrs);
                MemPath::Gather
            }
        }};
    }

    // Default PC advance; control flow overrides it.
    let mut next_pc = pc + 1;
    let mut effect = StepEffect::Compute(op.unit());

    match op {
        DOp::MovR { d, a } => {
            if !armed && is_uniform(warp, a) {
                let v = scalar(warp, a);
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                alu!(d, |lane| ra[lane]);
            }
        }
        DOp::MovI { d, imm } => {
            if !armed {
                scalar_write(warp, d, active, imm);
            } else {
                alu!(d, |_lane| imm);
            }
        }
        DOp::SpecialLane { d, s } => {
            let warp_base = (warp.warp_idx * 32) as u32;
            alu!(d, |lane| special_value(
                s,
                &ctx.dims,
                ctx.sm_id,
                warp_base + lane as u32
            ));
        }
        DOp::SpecialUniform { d, s } => {
            let warp_base = (warp.warp_idx * 32) as u32;
            let v0 = special_value(s, &ctx.dims, ctx.sm_id, warp_base);
            if !armed {
                scalar_write(warp, d, active, v0);
            } else {
                alu!(d, |_lane| v0);
            }
        }
        DOp::Param { d, idx } => {
            let v0 = ctx.params.get(usize::from(idx)).copied().unwrap_or(0);
            if !armed {
                scalar_write(warp, d, active, v0);
            } else {
                alu!(d, |_lane| v0);
            }
        }
        DOp::IAluRR { op: iop, d, a, b } => {
            if !armed && is_uniform(warp, a) && is_uniform(warp, b) {
                let v = eval_int(iop, scalar(warp, a), scalar(warp, b));
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                let rb = reg_row(warp, b);
                alu!(d, |lane| eval_int(iop, ra[lane], rb[lane]));
            }
        }
        DOp::IAluRI { op: iop, d, a, imm } => {
            if !armed && is_uniform(warp, a) {
                let v = eval_int(iop, scalar(warp, a), imm);
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                alu!(d, |lane| eval_int(iop, ra[lane], imm));
            }
        }
        DOp::IMad { d, a, b: sb, c: sc } => {
            if !armed && is_uniform(warp, a) && dsrc_uniform(warp, sb) && dsrc_uniform(warp, sc) {
                let v = scalar(warp, a)
                    .wrapping_mul(dsrc_scalar(warp, sb))
                    .wrapping_add(dsrc_scalar(warp, sc));
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                let rb = dsrc_row(warp, sb);
                let rc = dsrc_row(warp, sc);
                alu!(d, |lane| ra[lane]
                    .wrapping_mul(rb[lane])
                    .wrapping_add(rc[lane]));
            }
        }
        DOp::FAluRR { op: fop, d, a, b } => {
            if !armed && is_uniform(warp, a) && is_uniform(warp, b) {
                let v = eval_float(fop, scalar(warp, a), scalar(warp, b));
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                let rb = reg_row(warp, b);
                alu!(d, |lane| eval_float(fop, ra[lane], rb[lane]));
            }
        }
        DOp::FAluRI { op: fop, d, a, imm } => {
            if !armed && is_uniform(warp, a) {
                let v = eval_float(fop, scalar(warp, a), imm);
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                alu!(d, |lane| eval_float(fop, ra[lane], imm));
            }
        }
        DOp::FFma { d, a, b: sb, c: sc } => {
            if !armed && is_uniform(warp, a) && dsrc_uniform(warp, sb) && dsrc_uniform(warp, sc) {
                let v =
                    b(f(scalar(warp, a))
                        .mul_add(f(dsrc_scalar(warp, sb)), f(dsrc_scalar(warp, sc))));
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                let rb = dsrc_row(warp, sb);
                let rc = dsrc_row(warp, sc);
                alu!(d, |lane| b(f(ra[lane]).mul_add(f(rb[lane]), f(rc[lane]))));
            }
        }
        DOp::FSfu { op: sop, d, a } => {
            if !armed && is_uniform(warp, a) {
                let v = eval_sfu(sop, scalar(warp, a));
                scalar_write(warp, d, active, v);
            } else {
                // SFU ops go through libm; evaluating inactive lanes would
                // waste far more than the branch saves, so this stays a
                // masked loop.
                for_lanes!(|lane| {
                    let va = warp.regs[a as usize + lane];
                    let v = corrupt!(lane, eval_sfu(sop, va));
                    warp.regs[d as usize + lane] = v;
                });
                warp.clear_uniform((d >> 5) as u16);
            }
        }
        DOp::I2F { d, a } => {
            if !armed && is_uniform(warp, a) {
                let v = b(scalar(warp, a) as i32 as f32);
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                alu!(d, |lane| b(ra[lane] as i32 as f32));
            }
        }
        DOp::F2I { d, a } => {
            if !armed && is_uniform(warp, a) {
                let fa = f(scalar(warp, a));
                let v = if fa.is_nan() { 0 } else { fa as i32 as u32 };
                scalar_write(warp, d, active, v);
            } else {
                let ra = reg_row(warp, a);
                alu!(d, |lane| {
                    let fa = f(ra[lane]);
                    if fa.is_nan() {
                        0
                    } else {
                        fa as i32 as u32
                    }
                });
            }
        }
        DOp::ISetpRR {
            p,
            cmp,
            a,
            b: sb,
            unsigned,
        } => {
            if is_uniform(warp, a) && is_uniform(warp, sb) {
                let (va, vb) = (scalar(warp, a), scalar(warp, sb));
                setp_scalar!(
                    p,
                    if unsigned {
                        cmp.eval_u32(va, vb)
                    } else {
                        cmp.eval_i32(va as i32, vb as i32)
                    }
                );
            } else {
                let ra = reg_row(warp, a);
                let rb = reg_row(warp, sb);
                setp!(p, |lane| if unsigned {
                    cmp.eval_u32(ra[lane], rb[lane])
                } else {
                    cmp.eval_i32(ra[lane] as i32, rb[lane] as i32)
                });
            }
        }
        DOp::ISetpRI {
            p,
            cmp,
            a,
            imm,
            unsigned,
        } => {
            if is_uniform(warp, a) {
                let va = scalar(warp, a);
                setp_scalar!(
                    p,
                    if unsigned {
                        cmp.eval_u32(va, imm)
                    } else {
                        cmp.eval_i32(va as i32, imm as i32)
                    }
                );
            } else {
                let ra = reg_row(warp, a);
                setp!(p, |lane| if unsigned {
                    cmp.eval_u32(ra[lane], imm)
                } else {
                    cmp.eval_i32(ra[lane] as i32, imm as i32)
                });
            }
        }
        DOp::FSetpRR { p, cmp, a, b: sb } => {
            if is_uniform(warp, a) && is_uniform(warp, sb) {
                setp_scalar!(p, cmp.eval_f32(f(scalar(warp, a)), f(scalar(warp, sb))));
            } else {
                let ra = reg_row(warp, a);
                let rb = reg_row(warp, sb);
                setp!(p, |lane| cmp.eval_f32(f(ra[lane]), f(rb[lane])));
            }
        }
        DOp::FSetpRI { p, cmp, a, imm } => {
            if is_uniform(warp, a) {
                setp_scalar!(p, cmp.eval_f32(f(scalar(warp, a)), f(imm)));
            } else {
                let ra = reg_row(warp, a);
                setp!(p, |lane| cmp.eval_f32(f(ra[lane]), f(imm)));
            }
        }
        DOp::Selp { d, a: sa, b: sb, p } => {
            let pm = warp.preds[usize::from(p)];
            let sel = pm & active;
            if !armed
                && dsrc_uniform(warp, sa)
                && dsrc_uniform(warp, sb)
                && (sel == 0 || sel == active)
            {
                let v = if sel == active {
                    dsrc_scalar(warp, sa)
                } else {
                    dsrc_scalar(warp, sb)
                };
                scalar_write(warp, d, active, v);
            } else {
                let ra = dsrc_row(warp, sa);
                let rb = dsrc_row(warp, sb);
                alu!(d, |lane| if pm & (1 << lane) != 0 {
                    ra[lane]
                } else {
                    rb[lane]
                });
            }
        }
        DOp::LdGlobal { d, a, offset } => {
            // Unconditional row compute: only active lanes are ever read
            // back (loads and the coalescer both apply `active`).
            let ra = reg_row(warp, a);
            let mut addrs = [0u32; 32];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                *slot = ra[lane].wrapping_add(offset);
            }
            match load!(ctx.global_mem, d, addrs, a) {
                MemPath::Uniform => uniform_sector(addrs[0], false, ctx.txs),
                MemPath::Row => row_sectors(addrs[0], false, ctx.txs),
                MemPath::Gather => coalesce_into(&addrs, active, false, ctx.txs),
            }
            effect = StepEffect::GlobalMem;
        }
        DOp::LdShared { d, a, offset } => {
            let ra = reg_row(warp, a);
            let mut addrs = [0u32; 32];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                *slot = ra[lane].wrapping_add(offset);
            }
            let _ = load!(ctx.shared_mem, d, addrs, a);
            effect = StepEffect::SharedMem;
        }
        DOp::StGlobal { a, offset, v } => {
            let ra = reg_row(warp, a);
            let mut addrs = [0u32; 32];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                *slot = ra[lane].wrapping_add(offset);
            }
            let path = if !armed && is_uniform(warp, a) && is_uniform(warp, v) {
                // Every active lane stores the same value to the same
                // address: one word write has the identical net effect.
                let val = scalar(warp, v);
                if store_word(ctx.global_mem, addrs[0], val, ctx.oob_accesses) {
                    *ctx.global_dirty = (*ctx.global_dirty).max(addrs[0] + 4);
                } else {
                    // Each active lane of the masked loop would count one
                    // dropped store; `store_word` counted the first.
                    *ctx.oob_accesses += u64::from(active.count_ones()) - 1;
                }
                MemPath::Uniform
            } else {
                let mut path = MemPath::Gather;
                if !armed && full {
                    if let Some(base) = contiguous_row(&addrs, ctx.global_mem.len()) {
                        let vr = reg_row(warp, v);
                        ctx.global_mem[base..base + 32].copy_from_slice(&vr);
                        *ctx.global_dirty = (*ctx.global_dirty).max(addrs[31] + 4);
                        path = MemPath::Row;
                    }
                }
                if path == MemPath::Gather {
                    let mut hi = 0u32;
                    let mut wrote = false;
                    for_lanes!(|lane| {
                        let val = warp.regs[v as usize + lane];
                        let val = corrupt!(lane, val);
                        if store_word(ctx.global_mem, addrs[lane], val, ctx.oob_accesses) {
                            hi = hi.max(addrs[lane]);
                            wrote = true;
                        }
                    });
                    if wrote {
                        *ctx.global_dirty = (*ctx.global_dirty).max(hi + 4);
                    }
                }
                path
            };
            match path {
                MemPath::Uniform => uniform_sector(addrs[0], true, ctx.txs),
                MemPath::Row => row_sectors(addrs[0], true, ctx.txs),
                MemPath::Gather => coalesce_into(&addrs, active, true, ctx.txs),
            }
            effect = StepEffect::GlobalMem;
        }
        DOp::StShared { a, offset, v } => {
            let ra = reg_row(warp, a);
            let mut addrs = [0u32; 32];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                *slot = ra[lane].wrapping_add(offset);
            }
            if !armed && is_uniform(warp, a) && is_uniform(warp, v) {
                let val = scalar(warp, v);
                if !store_word(ctx.shared_mem, addrs[0], val, ctx.oob_accesses) {
                    *ctx.oob_accesses += u64::from(active.count_ones()) - 1;
                }
            } else {
                let mut fast = false;
                if !armed && full {
                    if let Some(base) = contiguous_row(&addrs, ctx.shared_mem.len()) {
                        let vr = reg_row(warp, v);
                        ctx.shared_mem[base..base + 32].copy_from_slice(&vr);
                        fast = true;
                    }
                }
                if !fast {
                    for_lanes!(|lane| {
                        let val = warp.regs[v as usize + lane];
                        let val = corrupt!(lane, val);
                        store_word(ctx.shared_mem, addrs[lane], val, ctx.oob_accesses);
                    });
                }
            }
            effect = StepEffect::SharedMem;
        }
        DOp::AtomAdd {
            d,
            a,
            offset,
            v,
            float,
        } => {
            // Atomics stay per-lane on every path: lanes interact through
            // memory (each sees the previous lane's store), so there is no
            // uniform shortcut that preserves the old-value results.
            ctx.atom_addrs.clear();
            let mut hi = 0u32;
            let mut wrote = false;
            for_lanes!(|lane| {
                let addr = warp.regs[a as usize + lane].wrapping_add(offset);
                ctx.atom_addrs.push(addr);
                let old = load_word(ctx.global_mem, addr, ctx.oob_accesses);
                let add = warp.regs[v as usize + lane];
                let new = if float {
                    b(f(old) + f(add))
                } else {
                    old.wrapping_add(add)
                };
                let new = corrupt!(lane, new);
                if store_word(ctx.global_mem, addr, new, ctx.oob_accesses) {
                    hi = hi.max(addr);
                    wrote = true;
                }
                let old = corrupt!(lane, old);
                warp.regs[d as usize + lane] = old;
            });
            warp.clear_uniform((d >> 5) as u16);
            if wrote {
                *ctx.global_dirty = (*ctx.global_dirty).max(hi + 4);
            }
            effect = StepEffect::Atomic;
        }
        DOp::Bra { target } => {
            next_pc = target;
        }
        DOp::BraCond {
            p,
            negate,
            target,
            reconv,
        } => {
            let taken = warp.pred_mask(p, negate, active);
            if taken == active {
                next_pc = target;
            } else if taken == 0 {
                // fall through
            } else {
                // Diverge: current entry resumes at the reconvergence point;
                // execute the fall-through path, then the taken path.
                let top_mut = warp.stack.last_mut().expect("stack");
                top_mut.pc = reconv;
                let fall = active & !taken;
                warp.stack.push(StackEntry {
                    mask: fall,
                    pc: pc + 1,
                    reconv,
                });
                warp.stack.push(StackEntry {
                    mask: taken,
                    pc: target,
                    reconv,
                });
                // PC bookkeeping handled by the pushed entries.
                if warp.settle() {
                    return StepEffect::Compute(ExecUnit::Ctrl);
                }
                warp.state = WarpState::Finished;
                return StepEffect::Finished;
            }
        }
        DOp::Bar => {
            debug_assert_eq!(
                active, warp.live,
                "barrier executed under divergence (kernel bug)"
            );
            warp.stack.last_mut().expect("stack").pc = next_pc;
            warp.state = WarpState::AtBarrier;
            return StepEffect::Barrier;
        }
        DOp::Exit => {
            warp.retire_lanes(active);
            if warp.settle() {
                return StepEffect::Compute(ExecUnit::Ctrl);
            }
            warp.state = WarpState::Finished;
            return StepEffect::Finished;
        }
        DOp::Nop => {}
    }

    warp.stack.last_mut().expect("stack").pc = next_pc;
    if !warp.settle() {
        warp.state = WarpState::Finished;
        return StepEffect::Finished;
    }
    effect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockDims;
    use crate::builder::KernelBuilder;
    use crate::fault::NoFaults;
    use crate::isa::CmpOp;
    use crate::kernel::Dim3;
    use crate::program::Program;

    fn dims() -> BlockDims {
        BlockDims {
            ctaid: (2, 0, 0),
            ntid: Dim3::x(64),
            nctaid: Dim3::x(4),
        }
    }

    /// Runs `prog` for one fresh 32-lane warp to completion, returning the
    /// warp (for register inspection).
    fn run_to_completion(prog: &Program, global: &mut [u32], params: &[u32]) -> Warp {
        let mut warp = Warp::new(0, u32::MAX, prog.regs_per_thread(), 0);
        let mut shared = vec![0u32; 256];
        let mut oob = 0u64;
        let mut dirty = 0u32;
        let mut hook = NoFaults;
        let mut txs = TxBuf::new();
        let mut atom_addrs = LaneAddrs::new();
        let mut steps = 0;
        while warp.state == WarpState::Ready {
            let mut ctx = ExecCtx {
                global_mem: global,
                shared_mem: &mut shared,
                params,
                dims: dims(),
                sm_id: 0,
                cycle: steps,
                kernel: KernelId(0),
                block: 2,
                fault: &mut hook,
                fault_enabled: true,
                oob_accesses: &mut oob,
                global_dirty: &mut dirty,
                txs: &mut txs,
                atom_addrs: &mut atom_addrs,
            };
            let eff = step_warp(&mut warp, prog.decoded(), &mut ctx);
            if eff == StepEffect::Finished {
                break;
            }
            steps += 1;
            assert!(steps < 100_000, "runaway program");
        }
        assert_eq!(oob, 0, "test programs must not go out of bounds");
        warp
    }

    #[test]
    fn arithmetic_and_specials() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaidX);
        let five = b.mov(5u32);
        let sum = b.iadd(tid, five); // tid + 5
        let r = b.imad(ctaid, 100u32, sum); // ctaid*100 + tid + 5
        let keep = b.reg();
        b.mov_to(keep, r);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..32 {
            assert_eq!(w.reg(keep.0, lane), 200 + lane as u32 + 5);
        }
    }

    #[test]
    fn float_pipeline_matches_host_math() {
        let mut b = KernelBuilder::new("t");
        let x = b.mov(2.0f32);
        let y = b.fmul(x, 3.0f32);
        let z = b.ffma(y, 2.0f32, 1.0f32); // 13
        let s = b.fsqrt(z);
        let keep = b.reg();
        b.mov_to(keep, s);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        let expect = 13.0f32.sqrt();
        assert_eq!(f32::from_bits(w.reg(keep.0, 0)), expect);
    }

    #[test]
    fn global_load_store_roundtrip() {
        let mut b = KernelBuilder::new("t");
        let base = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let addr = b.addr_w(base, tid);
        let v = b.ldg(addr, 0);
        let v2 = b.iadd(v, 1u32);
        b.stg(addr, 0, v2);
        let prog = b.build().expect("valid");
        let mut mem = vec![0u32; 64];
        for i in 0..32u32 {
            mem[i as usize] = i * 10;
        }
        let _ = run_to_completion(&prog, &mut mem, &[0]);
        for i in 0..32u32 {
            assert_eq!(mem[i as usize], i * 10 + 1);
        }
    }

    #[test]
    fn divergent_if_else_updates_disjoint_lanes() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let out = b.mov(0u32);
        let p = b.isetp(CmpOp::Lt, tid, 16u32);
        b.if_else(p, |b| b.mov_to(out, 111u32), |b| b.mov_to(out, 222u32));
        let keep = b.reg();
        b.mov_to(keep, out);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..32 {
            let expect = if lane < 16 { 111 } else { 222 };
            assert_eq!(w.reg(keep.0, lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn divergent_loop_trip_counts_differ_per_lane() {
        // Each lane sums 0..tid.
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let acc = b.mov(0u32);
        b.for_range(0u32, tid, 1u32, |b, i| {
            b.iadd_to(acc, acc, i);
        });
        let keep = b.reg();
        b.mov_to(keep, acc);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..32u32 {
            let expect = lane * lane.saturating_sub(1) / 2;
            assert_eq!(w.reg(keep.0, lane as usize), expect, "lane {lane}");
        }
    }

    #[test]
    fn early_exit_guard_retires_lanes() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let out = b.mov(7u32);
        let p = b.isetp(CmpOp::Ge, tid, 8u32);
        b.if_(p, |b| b.exit());
        b.mov_to(out, 9u32);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..8 {
            assert_eq!(w.reg(out.0, lane), 9, "surviving lanes run the tail");
        }
        for lane in 8..32 {
            // Exited lanes never executed the tail.
            assert_eq!(w.reg(out.0, lane), 7, "exited lanes keep the old value");
        }
    }

    #[test]
    fn selp_and_setp_float() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let ftid = b.i2f(tid);
        let p = b.fsetp(CmpOp::Gt, ftid, 10.5f32);
        let r = b.selp(p, 1u32, 2u32);
        let keep = b.reg();
        b.mov_to(keep, r);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..32 {
            let expect = if lane as f32 > 10.5 { 1 } else { 2 };
            assert_eq!(w.reg(keep.0, lane), expect);
        }
    }

    #[test]
    fn shared_memory_roundtrip() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX);
        let off = b.ishl(tid, 2u32);
        let v = b.imul(tid, 3u32);
        b.sts(off, 0, v);
        let rd = b.lds(off, 0);
        let keep = b.reg();
        b.mov_to(keep, rd);
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        for lane in 0..32u32 {
            assert_eq!(w.reg(keep.0, lane as usize), lane * 3);
        }
    }

    #[test]
    fn atomics_accumulate_across_lanes() {
        let mut b = KernelBuilder::new("t");
        let base = b.param(0);
        let one = b.mov(1u32);
        let _old = b.atom_add(base, 0, one);
        let prog = b.build().expect("valid");
        let mut mem = vec![0u32; 4];
        let _ = run_to_completion(&prog, &mut mem, &[0]);
        assert_eq!(mem[0], 32, "all 32 lanes incremented");
    }

    #[test]
    fn oob_reads_poison_and_are_counted() {
        let mut b = KernelBuilder::new("t");
        let addr = b.mov(0x1000u32); // beyond the 16-byte image below
        let v = b.ldg(addr, 0);
        let keep = b.reg();
        b.mov_to(keep, v);
        let prog = b.build().expect("valid");

        let mut warp = Warp::new(0, 0b1, prog.regs_per_thread(), 0);
        let mut shared = vec![0u32; 4];
        let mut global = vec![0u32; 4];
        let mut oob = 0u64;
        let mut dirty = 0u32;
        let mut hook = NoFaults;
        let mut txs = TxBuf::new();
        let mut atom_addrs = LaneAddrs::new();
        loop {
            let mut ctx = ExecCtx {
                global_mem: &mut global,
                shared_mem: &mut shared,
                params: &[],
                dims: dims(),
                sm_id: 0,
                cycle: 0,
                kernel: KernelId(0),
                block: 0,
                fault: &mut hook,
                fault_enabled: true,
                oob_accesses: &mut oob,
                global_dirty: &mut dirty,
                txs: &mut txs,
                atom_addrs: &mut atom_addrs,
            };
            if step_warp(&mut warp, prog.decoded(), &mut ctx) == StepEffect::Finished {
                break;
            }
        }
        assert_eq!(oob, 1);
        assert_eq!(warp.reg(keep.0, 0), 0xdead_beef);
    }

    #[test]
    fn uniform_oob_load_counts_every_active_lane() {
        // A full warp loading from one shared out-of-bounds address takes
        // the uniform-address fast path, which must still count 32 OOB
        // accesses (one per active lane) and poison the destination.
        let mut b = KernelBuilder::new("t");
        let addr = b.mov(0x1000u32);
        let v = b.ldg(addr, 0);
        let keep = b.reg();
        b.mov_to(keep, v);
        let prog = b.build().expect("valid");

        let mut warp = Warp::new(0, u32::MAX, prog.regs_per_thread(), 0);
        let mut shared = vec![0u32; 4];
        let mut global = vec![0u32; 4];
        let mut oob = 0u64;
        let mut dirty = 0u32;
        let mut hook = NoFaults;
        let mut txs = TxBuf::new();
        let mut atom_addrs = LaneAddrs::new();
        loop {
            let mut ctx = ExecCtx {
                global_mem: &mut global,
                shared_mem: &mut shared,
                params: &[],
                dims: dims(),
                sm_id: 0,
                cycle: 0,
                kernel: KernelId(0),
                block: 0,
                fault: &mut hook,
                fault_enabled: true,
                oob_accesses: &mut oob,
                global_dirty: &mut dirty,
                txs: &mut txs,
                atom_addrs: &mut atom_addrs,
            };
            if step_warp(&mut warp, prog.decoded(), &mut ctx) == StepEffect::Finished {
                break;
            }
        }
        assert_eq!(oob, 32, "one OOB count per active lane");
        for lane in 0..32 {
            assert_eq!(warp.reg(keep.0, lane), 0xdead_beef, "lane {lane}");
        }
    }

    #[test]
    fn uniformity_tracks_splats_and_lane_varying_results() {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(SpecialReg::TidX); // lane-varying
        let ctaid = b.special(SpecialReg::CtaidX); // uniform
        let k = b.mov(41u32); // uniform
        let u = b.iadd(ctaid, k); // uniform + uniform -> uniform
        let m = b.iadd(tid, k); // varying + uniform -> varying
        let prog = b.build().expect("valid");
        let w = run_to_completion(&prog, &mut [], &[]);
        assert!(!w.is_uniform(tid.0), "tid varies per lane");
        assert!(w.is_uniform(ctaid.0), "ctaid splats");
        assert!(w.is_uniform(k.0), "immediate mov splats");
        assert!(w.is_uniform(u.0), "uniform arithmetic stays uniform");
        assert!(!w.is_uniform(m.0), "mixed arithmetic is conservative");
        // The claim is sound: every tracked row really is identical.
        for r in 0..prog.regs_per_thread() {
            if w.is_uniform(r) {
                let v0 = w.reg(r, 0);
                for lane in 1..32 {
                    assert_eq!(w.reg(r, lane), v0, "uniform r{r} differs at {lane}");
                }
            }
        }
    }

    #[test]
    fn global_access_reports_coalesced_transactions() {
        let mut b = KernelBuilder::new("t");
        let base = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let addr = b.addr_w(base, tid);
        let _ = b.ldg(addr, 0);
        let prog = b.build().expect("valid");

        let mut warp = Warp::new(0, u32::MAX, prog.regs_per_thread(), 0);
        let mut shared = vec![0u32; 4];
        let mut global = vec![0u32; 1024];
        let mut oob = 0u64;
        let mut dirty = 0u32;
        let mut hook = NoFaults;
        let mut txs = TxBuf::new();
        let mut atom_addrs = LaneAddrs::new();
        let mut saw_mem = None;
        loop {
            let mut ctx = ExecCtx {
                global_mem: &mut global,
                shared_mem: &mut shared,
                params: &[0],
                dims: dims(),
                sm_id: 0,
                cycle: 0,
                kernel: KernelId(0),
                block: 0,
                fault: &mut hook,
                fault_enabled: true,
                oob_accesses: &mut oob,
                global_dirty: &mut dirty,
                txs: &mut txs,
                atom_addrs: &mut atom_addrs,
            };
            match step_warp(&mut warp, prog.decoded(), &mut ctx) {
                StepEffect::Finished => break,
                StepEffect::GlobalMem => saw_mem = Some(*ctx.txs),
                _ => {}
            }
        }
        let txs = saw_mem.expect("load issued");
        assert_eq!(txs.len(), 4, "32 lanes x 4B fully coalesced = 4 sectors");
    }
}
