//! The top-level GPU device: global memory, kernel launch queue, the cycle
//! loop, and the scheduling round that consults the installed kernel
//! scheduler policy.

use crate::block::{BlockDims, BlockState};
use crate::config::{CoreKind, GpuConfig};
use crate::fault::{FaultHook, NoFaults};
use crate::kernel::{BlockFootprint, KernelId, KernelLaunch, LaunchAttrs};
use crate::mem::system::MemorySystem;
use crate::scheduler::{
    Assignment, DefaultScheduler, KernelSchedulerPolicy, KernelSnapshot, SchedulerView, SmSnapshot,
};
use crate::sm::{BlockCompletion, IssueRecord, Sm, SmState};
use crate::stats::SimStats;
use crate::timeq::TimeQ;
use crate::trace::{BlockRecord, ExecutionTrace, KernelRecord};
use higpu_telemetry::{EventKind, EventRing, TraceEvent, NO_SM};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Cycles between a block's dispatch decision and its warps becoming
/// issuable (pipeline fill / context initialization).
const BLOCK_DISPATCH_LATENCY: u64 = 10;

/// Errors reported by the GPU device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation cannot make progress (scheduler refuses to dispatch
    /// pending work and no event is outstanding).
    Stalled {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Blocks that remain undispatched.
        pending_blocks: u32,
    },
    /// Device memory allocation failed.
    OutOfMemory {
        /// Bytes requested.
        requested: u32,
        /// Bytes available.
        available: u32,
    },
    /// Operation requires an idle device (e.g. policy replacement).
    NotIdle,
    /// A launch exceeded per-SM resources (the block can never be placed).
    Unschedulable {
        /// Program name of the offending launch.
        program: String,
    },
    /// The watchdog cycle limit ([`Gpu::set_cycle_limit`]) elapsed before
    /// the launched kernels completed. Models the DCLS host's deadline
    /// monitor: a fault that sends a kernel into a runaway loop is caught
    /// as a timing violation within the fault-tolerant time interval.
    DeadlineExceeded {
        /// Cycle at which the simulation was cut off.
        cycle: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled {
                cycle,
                pending_blocks,
            } => write!(
                f,
                "simulation stalled at cycle {cycle} with {pending_blocks} pending blocks"
            ),
            SimError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device allocation of {requested} bytes exceeds {available} free bytes"
            ),
            SimError::NotIdle => write!(f, "operation requires an idle device"),
            SimError::Unschedulable { program } => {
                write!(f, "kernel '{program}' can never fit on any SM")
            }
            SimError::DeadlineExceeded { cycle, limit } => {
                write!(
                    f,
                    "watchdog deadline of {limit} cycles exceeded at cycle {cycle}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A device memory address (byte offset into GPU global memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevPtr(pub u32);

impl DevPtr {
    /// The address `words * 4` bytes past this pointer.
    pub fn offset_words(self, words: u32) -> DevPtr {
        DevPtr(self.0 + words * 4)
    }
}

#[derive(Debug, Clone)]
struct KernelRuntime {
    id: KernelId,
    /// The program the blocks execute (shared with every dispatched block).
    program: Arc<crate::program::Program>,
    /// Grid geometry (the rest of the original [`LaunchConfig`] — shared
    /// memory, parameter words — lives in `footprint` / `params`; the
    /// launch descriptor itself is not retained, so its `LaunchAttrs` copy
    /// is gone and only the snapshot-shared `Arc` below remains).
    grid: crate::kernel::Dim3,
    /// Block geometry.
    block: crate::kernel::Dim3,
    /// Launch attributes shared with per-round scheduler snapshots (an
    /// `Arc` clone instead of a deep `LaunchAttrs` clone keeps the
    /// scheduling round allocation-free).
    attrs: Arc<LaunchAttrs>,
    params: Arc<[u32]>,
    footprint: BlockFootprint,
    arrival: u64,
    blocks_issued: u32,
    blocks_done: u32,
    record: usize,
}

impl KernelRuntime {
    fn blocks_total(&self) -> u32 {
        self.grid.count().min(u64::from(u32::MAX)) as u32
    }

    fn is_finished(&self) -> bool {
        self.blocks_done == self.blocks_total()
    }
}

/// Reusable buffers of the scheduling round and the cycle loop. Scheduling
/// rounds are rare next to instructions, but campaigns run millions of them;
/// keeping the snapshot/assignment vectors warm makes a steady-state round
/// perform **zero** heap allocations (test-enforced).
#[derive(Debug, Default)]
struct SchedScratch {
    kernels: Vec<KernelSnapshot>,
    sms: Vec<SmSnapshot>,
    assignments: Vec<Assignment>,
    fits: Vec<bool>,
    completions: Vec<BlockCompletion>,
}

/// A point-in-time capture of the full architectural state of a [`Gpu`]:
/// clock, dirty prefix of the memory image, memory-hierarchy timing state,
/// kernel launch table, per-SM block/warp state, execution trace, counters,
/// SM health and scheduler-policy state.
///
/// Produced by [`Gpu::snapshot`] and applied by [`Gpu::restore`]. Restoring
/// a snapshot and running to idle is **bit-identical** — same
/// [`IssueRecord`] stream, statistics and trace — to running straight
/// through, on either device core (snapshots carry no core-specific state;
/// the event core rebuilds its queues on entry).
///
/// Deliberately *not* captured:
///
/// * the watchdog limit ([`Gpu::set_cycle_limit`]) — a deadline is harness
///   state, not device state; a trial restored at cycle `C` keeps the same
///   absolute deadline as a from-zero run;
/// * the fault hook — injection schedules belong to the trial, not the
///   checkpoint;
/// * the policy *object* — only its serialized state
///   ([`KernelSchedulerPolicy::save_state`]) is captured, so the caller
///   must have the same kind of policy installed when restoring.
///
/// Snapshots are immutable, reusable (one snapshot can seed many restored
/// runs) and `Send + Sync` (programs and launch attributes are shared via
/// `Arc`), so fault-injection campaigns can share one checkpoint store
/// across worker threads.
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    cycle: u64,
    next_dispatch_slot: u64,
    alloc_cursor: u32,
    dirty_hi: u32,
    next_kernel_id: u64,
    sched_dirty: bool,
    instructions: u64,
    blocks_completed: u64,
    quarantined: Vec<bool>,
    /// Dirty prefix of the word-addressed memory image (`dirty_hi` bytes).
    mem: Vec<u32>,
    /// Total device memory capacity in words (restore-target validation).
    mem_words: usize,
    memsys: MemorySystem,
    kernels: Vec<KernelRuntime>,
    trace: ExecutionTrace,
    sms: Vec<SmState>,
    policy_state: Vec<u64>,
}

impl DeviceSnapshot {
    /// The cycle at which this snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Approximate heap footprint in bytes (dominated by the dirty memory
    /// prefix; used for checkpoint-store budgeting and reporting).
    pub fn approx_bytes(&self) -> usize {
        self.mem.len() * 4 + std::mem::size_of::<Self>()
    }
}

/// The simulated GPU device.
///
/// # Examples
///
/// ```
/// use higpu_sim::builder::KernelBuilder;
/// use higpu_sim::config::GpuConfig;
/// use higpu_sim::gpu::Gpu;
/// use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
/// let buf = gpu.alloc_words(32)?;
/// gpu.write_u32(buf, &[5; 32]);
///
/// // y[i] += 1 for every thread.
/// let mut b = KernelBuilder::new("inc");
/// let base = b.param(0);
/// let i = b.global_tid_x();
/// let a = b.addr_w(base, i);
/// let v = b.ldg(a, 0);
/// let v1 = b.iadd(v, 1u32);
/// b.stg(a, 0, v1);
/// let prog = b.build()?.into_shared();
///
/// let cfg = LaunchConfig::new(1u32, 32u32).param_u32(buf.0);
/// gpu.launch(KernelLaunch::new(prog, cfg));
/// gpu.run_to_idle()?;
/// assert_eq!(gpu.read_u32(buf, 32), vec![6; 32]);
/// # Ok(())
/// # }
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    /// Device global memory: word storage, byte-addressed (see
    /// [`crate::mem::image`]). `DevPtr`s remain byte addresses.
    mem: Vec<u32>,
    memsys: MemorySystem,
    sms: Vec<Sm>,
    kernels: Vec<KernelRuntime>,
    policy: Box<dyn KernelSchedulerPolicy>,
    fault: Box<dyn FaultHook>,
    /// False while `fault` is the [`NoFaults`] default; lets the execution
    /// hot path skip all virtual hook calls.
    fault_enabled: bool,
    /// Per-SM health: `quarantined[sm]` is set by [`Gpu::quarantine_sm`]
    /// when a permanent fault has been attributed to that SM. Quarantined
    /// SMs are excluded from dispatch (scheduler snapshots report them as
    /// never fitting, and the post-policy fit check refuses assignments —
    /// including fault-hook reroutes — that land on them).
    quarantined: Vec<bool>,
    cycle: u64,
    /// Watchdog: abort `run_to_idle` past this cycle (see
    /// [`Gpu::set_cycle_limit`]).
    cycle_limit: Option<u64>,
    next_dispatch_slot: u64,
    alloc_cursor: u32,
    /// High-water mark of bytes ever written (host transfers and device
    /// stores); [`Gpu::reset`] zeroes only this prefix.
    dirty_hi: u32,
    next_kernel_id: u64,
    trace: ExecutionTrace,
    sched_dirty: bool,
    sched: SchedScratch,
    instructions: u64,
    blocks_completed: u64,
    /// Telemetry sink: `Some` iff [`GpuConfig::telemetry_capacity`] was set
    /// (or [`Gpu::set_telemetry_capacity`] was called). Purely
    /// observational — **not** part of [`DeviceSnapshot`] (a restore must
    /// not rewrite the recording that observed it) and excluded from every
    /// architectural comparison; `None` reduces each hook to one branch.
    telemetry: Option<Box<EventRing>>,
    /// Restores performed since the last reset (telemetry counter).
    restores: u64,
    /// Cycles fast-forwarded by those restores (target minus pre-restore
    /// clock, forward jumps only) — the work checkpointed replay skipped.
    restore_skipped_cycles: u64,
    // ---- event-core state ([`CoreKind::Event`]) ------------------------------
    // Rebuilt from scratch on every `run_until` entry, so launches, resets,
    // cancellations and quarantines between runs need no event bookkeeping.
    // All containers retain capacity across runs.
    /// SM wake-up queue: `(cycle, sm)` entries, one live entry per SM whose
    /// cached `next_ready_at` is finite (pushed after every state change;
    /// stale entries are discarded lazily on pop/peek by re-checking the
    /// SM's current wake time).
    sm_wake: TimeQ<usize>,
    /// Future kernel arrivals `(arrival, kernel id)`, min-heap. Non-empty
    /// iff some unfinished kernel has `arrival > cycle` — exactly the
    /// stepping core's per-iteration "future arrival" re-dirty condition.
    arrivals: BinaryHeap<Reverse<(u64, u64)>>,
    /// Incremental mirror of [`Gpu::pending_blocks`]: credited when an
    /// arrival matures, debited per dispatched block
    /// (`debug_assert`-checked against the exhaustive sum every advance).
    arrived_pending: u32,
    /// Count of launched-but-unfinished kernels, maintained across every
    /// launch/complete/cancel/restore transition so [`Gpu::is_idle`] — on
    /// the event core's hot path twice per visited cycle — is one compare
    /// instead of an O(kernels) scan (a many-launch run keeps dozens of
    /// finished kernels in the table). `debug_assert`-checked against the
    /// exhaustive scan on every [`Gpu::is_idle`] call.
    live_kernels: usize,
    /// Scratch: SMs due to issue at the current cycle (sorted ascending to
    /// reproduce the stepping core's SM visit order).
    due_sms: Vec<usize>,
    /// Scratch: per-SM dedup flags for `due_sms` collection.
    due_flags: Vec<bool>,
    /// Scratch: per-SM wake times snapshotted around scheduling rounds to
    /// detect admissions that change an SM's wake-up.
    wake_snapshot: Vec<u64>,
    /// Flat mirror of every SM's [`Sm::next_ready_at`], rebuilt on entry to
    /// the flat event core and refreshed after each issue / scheduling
    /// round. The per-visit due-SM scan reads this one contiguous row
    /// instead of chasing a cache line into each (large) [`Sm`] struct —
    /// most visits wake only one or two of the SMs but must compare all of
    /// them. `debug_assert`-checked against the authoritative per-SM cache
    /// at every read.
    flat_wakes: Vec<u64>,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("num_sms", &self.sms.len())
            .field("policy", &self.policy.name())
            .field("kernels", &self.kernels.len())
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Widest device the flat event core handles; wider devices use the
    /// time-wheel variant (see [`Gpu::run_until_event`]).
    pub const FLAT_SM_LIMIT: usize = 32;

    /// Creates a GPU with the [`DefaultScheduler`] policy and no faults.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`].
    pub fn new(cfg: GpuConfig) -> Self {
        Self::with_policy(cfg, Box::new(DefaultScheduler::new()))
    }

    /// Creates a GPU with a caller-provided kernel scheduler policy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`].
    pub fn with_policy(cfg: GpuConfig, policy: Box<dyn KernelSchedulerPolicy>) -> Self {
        cfg.validate().expect("invalid GPU configuration");
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect();
        let memsys = MemorySystem::new(&cfg);
        let mem = vec![0u32; cfg.global_mem_bytes / 4];
        Self {
            memsys,
            sms,
            mem,
            kernels: Vec::new(),
            policy,
            fault: Box::new(NoFaults),
            fault_enabled: false,
            quarantined: vec![false; cfg.num_sms],
            cycle: 0,
            cycle_limit: None,
            next_dispatch_slot: 0,
            alloc_cursor: 0,
            dirty_hi: 0,
            next_kernel_id: 0,
            trace: ExecutionTrace::new(),
            sched_dirty: false,
            sched: SchedScratch::default(),
            instructions: 0,
            blocks_completed: 0,
            telemetry: cfg
                .telemetry_capacity
                .map(|n| Box::new(EventRing::with_capacity(n))),
            restores: 0,
            restore_skipped_cycles: 0,
            sm_wake: TimeQ::new(),
            arrivals: BinaryHeap::new(),
            arrived_pending: 0,
            live_kernels: 0,
            due_sms: Vec::new(),
            due_flags: vec![false; cfg.num_sms],
            wake_snapshot: Vec::new(),
            flat_wakes: Vec::new(),
            cfg,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Name of the installed scheduling policy.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Replaces the kernel scheduler policy. Mirrors the paper's operational
    /// reconfiguration: only legal while the GPU is idle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotIdle`] if kernels are in flight.
    pub fn set_policy(&mut self, policy: Box<dyn KernelSchedulerPolicy>) -> Result<(), SimError> {
        if !self.is_idle() {
            return Err(SimError::NotIdle);
        }
        self.policy = policy;
        Ok(())
    }

    /// Arms (or with `None` disarms) the watchdog: [`Gpu::run_to_idle`]
    /// aborts with [`SimError::DeadlineExceeded`] once the clock passes
    /// `limit` cycles with kernels still in flight.
    ///
    /// This is the simulator's form of the DCLS host's deadline monitor
    /// (paper Sec. IV / FTTI): fault injection can corrupt a loop counter
    /// into a multi-billion-iteration runaway; the watchdog converts that
    /// into a promptly *detected* timing violation instead of an unbounded
    /// simulation. Cleared by [`Gpu::reset`].
    pub fn set_cycle_limit(&mut self, limit: Option<u64>) {
        self.cycle_limit = limit;
    }

    /// The currently armed watchdog limit, if any.
    pub fn cycle_limit(&self) -> Option<u64> {
        self.cycle_limit
    }

    // ---- snapshot / restore --------------------------------------------------

    /// Captures the full architectural state of the device (see
    /// [`DeviceSnapshot`] for exactly what is and is not included). Legal at
    /// any point, including mid-run with blocks in flight — pause with
    /// [`Gpu::run_to_cycle`] first to pick the cycle.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let words = (self.dirty_hi as usize).div_ceil(4).min(self.mem.len());
        let mut policy_state = Vec::new();
        self.policy.save_state(&mut policy_state);
        DeviceSnapshot {
            cycle: self.cycle,
            next_dispatch_slot: self.next_dispatch_slot,
            alloc_cursor: self.alloc_cursor,
            dirty_hi: self.dirty_hi,
            next_kernel_id: self.next_kernel_id,
            sched_dirty: self.sched_dirty,
            instructions: self.instructions,
            blocks_completed: self.blocks_completed,
            quarantined: self.quarantined.clone(),
            mem: self.mem[..words].to_vec(),
            mem_words: self.mem.len(),
            memsys: self.memsys.clone(),
            kernels: self.kernels.clone(),
            trace: self.trace.clone(),
            sms: self.sms.iter().map(Sm::snapshot_state).collect(),
            policy_state,
        }
    }

    /// Rewinds (or fast-forwards) the device to the state captured in
    /// `snap`, replacing clock, memory, caches, launch table, per-SM state,
    /// trace, counters and SM health. Legal on a busy device — in-flight
    /// state is simply overwritten.
    ///
    /// The watchdog limit and fault hook are **preserved** (they are
    /// harness state, see [`DeviceSnapshot`]); the installed policy object
    /// is retained and its internal state overwritten via
    /// [`KernelSchedulerPolicy::load_state`] — the caller must have
    /// installed the same *kind* of policy that was active at capture time.
    ///
    /// # Panics
    ///
    /// Panics if this device's geometry (SM count, memory capacity) differs
    /// from the snapshot's source device.
    pub fn restore(&mut self, snap: &DeviceSnapshot) {
        assert_eq!(
            self.sms.len(),
            snap.sms.len(),
            "snapshot restore across differing SM counts"
        );
        assert_eq!(
            self.mem.len(),
            snap.mem_words,
            "snapshot restore across differing memory capacities"
        );
        // Zero the tail this device dirtied beyond the snapshot's prefix,
        // then overwrite the prefix: bytes past `snap.dirty_hi` are zero in
        // the source image by the dirty-prefix invariant.
        let cur = (self.dirty_hi as usize).div_ceil(4).min(self.mem.len());
        if cur > snap.mem.len() {
            self.mem[snap.mem.len()..cur].fill(0);
        }
        self.mem[..snap.mem.len()].copy_from_slice(&snap.mem);
        let skipped = snap.cycle.saturating_sub(self.cycle);
        self.restores += 1;
        self.restore_skipped_cycles += skipped;
        self.emit(
            EventKind::Restore,
            snap.cycle,
            NO_SM,
            self.restores,
            skipped,
        );
        self.cycle = snap.cycle;
        self.next_dispatch_slot = snap.next_dispatch_slot;
        self.alloc_cursor = snap.alloc_cursor;
        self.dirty_hi = snap.dirty_hi;
        self.next_kernel_id = snap.next_kernel_id;
        self.sched_dirty = snap.sched_dirty;
        self.instructions = snap.instructions;
        self.blocks_completed = snap.blocks_completed;
        self.quarantined.clone_from(&snap.quarantined);
        self.memsys.clone_from(&snap.memsys);
        self.kernels.clone_from(&snap.kernels);
        self.live_kernels = self.kernels.iter().filter(|k| !k.is_finished()).count();
        self.trace.clone_from(&snap.trace);
        for (sm, st) in self.sms.iter_mut().zip(&snap.sms) {
            sm.restore_state(st);
        }
        self.policy.load_state(&snap.policy_state);
    }

    // ---- telemetry -----------------------------------------------------------

    /// Records one telemetry event; a branch when recording is disabled.
    #[inline]
    fn emit(&mut self, kind: EventKind, cycle: u64, sm: u32, id: u64, aux: u64) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.push(TraceEvent {
                cycle,
                kind,
                sm,
                id,
                aux,
            });
        }
    }

    /// True when a telemetry ring is installed.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Installs (or with `None` removes) a telemetry ring of the given
    /// capacity, discarding any previous recording. Runtime equivalent of
    /// [`GpuConfig::telemetry_capacity`].
    pub fn set_telemetry_capacity(&mut self, capacity: Option<usize>) {
        self.telemetry = capacity.map(|n| Box::new(EventRing::with_capacity(n)));
    }

    /// Records an externally observed event (fault arm/detect, pipeline
    /// stage lifecycle, …) into the ring. A no-op when recording is
    /// disabled, so harness layers call it unconditionally.
    pub fn record_event(&mut self, kind: EventKind, cycle: u64, sm: u32, id: u64, aux: u64) {
        self.emit(kind, cycle, sm, id, aux);
    }

    /// The recorded events, oldest first (empty when recording is
    /// disabled).
    pub fn telemetry_events(&self) -> Vec<TraceEvent> {
        self.telemetry
            .as_deref()
            .map(EventRing::to_vec)
            .unwrap_or_default()
    }

    /// Removes and returns the recorded events, retaining the ring.
    pub fn drain_telemetry(&mut self) -> Vec<TraceEvent> {
        self.telemetry
            .as_deref_mut()
            .map(EventRing::drain)
            .unwrap_or_default()
    }

    /// Events lost to ring wrap-around since the last reset/drain.
    pub fn telemetry_overwritten(&self) -> u64 {
        self.telemetry
            .as_deref()
            .map(EventRing::overwritten)
            .unwrap_or(0)
    }

    /// Restores performed since the last reset.
    pub fn restore_count(&self) -> u64 {
        self.restores
    }

    /// Cycles fast-forwarded by restores since the last reset — simulation
    /// work a checkpointed trial skipped.
    pub fn restore_skipped_cycles(&self) -> u64 {
        self.restore_skipped_cycles
    }

    /// Installs a fault-injection hook (replaces any previous hook).
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault = hook;
        self.fault_enabled = true;
    }

    /// Removes any installed fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.fault = Box::new(NoFaults);
        self.fault_enabled = false;
    }

    // ---- SM health -----------------------------------------------------------

    /// Quarantines one SM: no block is ever dispatched to it again (until
    /// [`Gpu::reset`]). Idempotent; blocks already resident on the SM run to
    /// completion — the host drains or cancels them as part of its recovery
    /// ladder, the simulator only guarantees no *new* placement.
    ///
    /// This is the diagnosis outcome of the limp-home ladder: once a
    /// permanent fault is attributed to an SM, the host removes it from
    /// service and re-plans the remaining frames on the shrunken device.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range (host-side wiring bug).
    pub fn quarantine_sm(&mut self, sm: usize) {
        assert!(sm < self.sms.len(), "quarantine of nonexistent SM {sm}");
        if !self.quarantined[sm] {
            self.quarantined[sm] = true;
            // Pending work that was headed for this SM must be re-placed.
            self.sched_dirty = true;
            self.emit(EventKind::QuarantineConvicted, self.cycle, sm as u32, 0, 0);
        }
    }

    /// True if `sm` is currently quarantined.
    pub fn is_quarantined(&self, sm: usize) -> bool {
        self.quarantined.get(sm).copied().unwrap_or(false)
    }

    /// Ids of all currently quarantined SMs, ascending.
    pub fn quarantined_sms(&self) -> Vec<usize> {
        (0..self.sms.len())
            .filter(|&i| self.quarantined[i])
            .collect()
    }

    /// Effective device capacity: SMs still in service (total minus
    /// quarantined). Admission and re-planning must consult this, not
    /// [`GpuConfig::num_sms`].
    pub fn effective_sms(&self) -> usize {
        self.quarantined.iter().filter(|q| !**q).count()
    }

    /// True when every launched kernel has finished. O(1): answered from
    /// the live-kernel counter, cross-checked against the exhaustive scan
    /// in debug builds.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.live_kernels == 0,
            self.kernels.iter().all(KernelRuntime::is_finished),
            "live-kernel counter diverged from the launch table"
        );
        self.live_kernels == 0
    }

    // ---- device memory ------------------------------------------------------

    /// Allocates `bytes` of device memory (256-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the bump allocator is
    /// exhausted.
    pub fn alloc(&mut self, bytes: u32) -> Result<DevPtr, SimError> {
        let aligned = self.alloc_cursor.div_ceil(256) * 256;
        let end = aligned.checked_add(bytes).ok_or(SimError::OutOfMemory {
            requested: bytes,
            available: 0,
        })?;
        let capacity = self.mem.len() * 4;
        if end as usize > capacity {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available: (capacity as u32).saturating_sub(aligned),
            });
        }
        self.alloc_cursor = end;
        Ok(DevPtr(aligned))
    }

    /// Allocates `words` 32-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the allocator is exhausted.
    pub fn alloc_words(&mut self, words: u32) -> Result<DevPtr, SimError> {
        self.alloc(words * 4)
    }

    /// Frees all allocations (bump allocator reset) and zeroes the written
    /// prefix of memory (untouched bytes are still zero from construction).
    /// Launched kernels must have finished.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotIdle`] if kernels are in flight.
    pub fn free_all(&mut self) -> Result<(), SimError> {
        if !self.is_idle() {
            return Err(SimError::NotIdle);
        }
        self.alloc_cursor = 0;
        let hi = (self.dirty_hi as usize).div_ceil(4).min(self.mem.len());
        self.mem[..hi].fill(0);
        self.dirty_hi = 0;
        Ok(())
    }

    /// Rewinds the device to its post-construction state **without
    /// reallocating** the (multi-MB) memory image: bump allocator reset,
    /// dirty memory prefix zeroed, caches flushed, counters and trace
    /// cleared, fault hook removed, watchdog disarmed, cycle back to 0.
    ///
    /// This is the fast path fault-injection campaigns use to reuse one
    /// device across thousands of trials; a reset device is observationally
    /// identical to a freshly constructed one, with one **explicit
    /// exception**: the installed scheduling policy object is *retained* —
    /// its internal state (round-robin cursors, serialization gates) is
    /// cleared via [`KernelSchedulerPolicy::reset`], but the policy itself
    /// is not replaced by the default. Campaigns that select a policy per
    /// trial therefore install it once per trial (e.g. through
    /// `RedundantExecutor::new`) and can never observe a stale *kind* of
    /// policy, while stale policy *state* is impossible by construction.
    /// Asserted by the `reset_retains_installed_policy_and_resets_its_state`
    /// test.
    ///
    /// SM health is **not** retained: all quarantine marks set through
    /// [`Gpu::quarantine_sm`] are cleared, so a reused campaign device
    /// starts every trial healthy at full capacity. Quarantine is a
    /// *diagnosis of this device's fault injection*, not configuration — a
    /// fresh trial draws a fresh fault model, and carrying a stale
    /// quarantine across trials would silently shrink every subsequent
    /// trial's device. Asserted by the `reset_clears_sm_quarantine` test.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotIdle`] if kernels are in flight.
    pub fn reset(&mut self) -> Result<(), SimError> {
        if !self.is_idle() {
            return Err(SimError::NotIdle);
        }
        self.free_all()?;
        self.memsys.reset();
        self.memsys.clear_stats();
        for sm in &mut self.sms {
            sm.reset();
        }
        self.kernels.clear();
        self.live_kernels = 0;
        self.policy.reset();
        self.clear_fault_hook();
        self.quarantined.fill(false);
        self.cycle = 0;
        self.cycle_limit = None;
        self.next_dispatch_slot = 0;
        self.next_kernel_id = 0;
        self.trace.clear();
        self.sched_dirty = false;
        self.instructions = 0;
        self.blocks_completed = 0;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.clear();
        }
        self.restores = 0;
        self.restore_skipped_cycles = 0;
        self.sm_wake.reset_stats();
        Ok(())
    }

    /// Like [`Gpu::reset`], but legal on a non-idle device: in-flight
    /// kernels and resident blocks are discarded (not completed) first.
    ///
    /// This is the watchdog-abort path: when a fault-injection trial is cut
    /// off by [`SimError::DeadlineExceeded`] its verdict is already final
    /// and the remaining device state is garbage, so campaigns discard it
    /// and keep the reusable device instead of reconstructing a fresh
    /// multi-MB image. A force-reset device is observationally identical to
    /// a freshly constructed one (the installed policy is retained, exactly
    /// as with [`Gpu::reset`]).
    pub fn force_reset(&mut self) {
        for sm in &mut self.sms {
            sm.discard_blocks();
        }
        self.kernels.clear();
        self.live_kernels = 0;
        self.reset().expect("all in-flight work was discarded");
    }

    /// Discards all in-flight and pending work — resident blocks are killed,
    /// undispatched blocks dropped — while **preserving** the clock, device
    /// memory, allocations, the installed policy and the execution trace.
    ///
    /// This is the host's mid-computation abort: when the deadline monitor
    /// fires on a stage of a real-time pipeline, the host cancels the hung
    /// offload and re-dispatches it on the same device within the remaining
    /// FTTI slack — time spent on the aborted attempt stays on the clock,
    /// exactly as it would on real hardware. Aborted kernels keep their
    /// trace records with `completion == None` (the observable of a killed
    /// launch). The watchdog limit is cleared so the caller can arm a fresh
    /// budget for the retry.
    pub fn cancel_in_flight(&mut self) {
        for sm in &mut self.sms {
            sm.discard_blocks();
        }
        self.kernels.clear();
        self.live_kernels = 0;
        self.cycle_limit = None;
        self.sched_dirty = false;
    }

    /// Discards in-flight and pending work of **only** the given kernels —
    /// the branch-local form of [`Gpu::cancel_in_flight`]: resident blocks
    /// of the listed kernels are killed and their undispatched blocks
    /// dropped, while every other kernel keeps executing undisturbed, with
    /// the clock, memory, allocations, policy and trace all preserved.
    ///
    /// This is how a partitioned frame executor aborts one DAG branch whose
    /// stage deadline fired: the cancelled branch's partition empties, its
    /// re-execution can be dispatched into the remaining FTTI slack, and
    /// sibling partitions never observe a clock-visible difference. The
    /// device watchdog is *not* cleared (sibling branches may still be
    /// running under their own limits); cancelled kernels keep their trace
    /// records with `completion == None`.
    pub fn cancel_kernels(&mut self, kernels: &[KernelId]) {
        for sm in &mut self.sms {
            sm.discard_blocks_of(kernels);
        }
        self.kernels.retain(|k| !kernels.contains(&k.id));
        self.live_kernels = self.kernels.iter().filter(|k| !k.is_finished()).count();
        // Freed partition capacity may admit other kernels' pending blocks.
        self.sched_dirty = true;
    }

    /// True once `kernel` has completed every block. Kernels cancelled via
    /// [`Gpu::cancel_kernels`] / [`Gpu::cancel_in_flight`] count as
    /// finished (they will never complete; their dead ids resolve rather
    /// than wedge a waiter).
    pub fn kernel_finished(&self, kernel: KernelId) -> bool {
        self.kernels
            .iter()
            .find(|k| k.id == kernel)
            .is_none_or(KernelRuntime::is_finished)
    }

    /// Writes raw bytes to device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory (host-side programming
    /// error).
    pub fn write_bytes(&mut self, ptr: DevPtr, data: &[u8]) {
        let a = ptr.0 as usize;
        for (i, &b) in data.iter().enumerate() {
            crate::mem::image::set_byte(&mut self.mem, a + i, b);
        }
        self.dirty_hi = self.dirty_hi.max((a + data.len()) as u32);
    }

    /// Reads raw bytes from device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory.
    pub fn read_bytes(&self, ptr: DevPtr, len: usize) -> Vec<u8> {
        let a = ptr.0 as usize;
        (a..a + len)
            .map(|i| crate::mem::image::get_byte(&self.mem, i))
            .collect()
    }

    /// Writes a `u32` slice to device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory.
    pub fn write_u32(&mut self, ptr: DevPtr, data: &[u32]) {
        let a = ptr.0 as usize;
        assert!(
            a + data.len() * 4 <= self.mem.len() * 4,
            "write exceeds device memory"
        );
        // Allocations are 256-byte aligned, so host transfers are straight
        // word copies.
        assert!(a.is_multiple_of(4), "device pointers are word aligned");
        self.mem[a / 4..a / 4 + data.len()].copy_from_slice(data);
        self.dirty_hi = self.dirty_hi.max((a + data.len() * 4) as u32);
    }

    /// Reads `len` `u32` words from device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory.
    pub fn read_u32(&self, ptr: DevPtr, len: usize) -> Vec<u32> {
        let a = ptr.0 as usize;
        assert!(a.is_multiple_of(4), "device pointers are word aligned");
        self.mem[a / 4..a / 4 + len].to_vec()
    }

    /// Writes an `f32` slice to device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory.
    pub fn write_f32(&mut self, ptr: DevPtr, data: &[f32]) {
        let a = ptr.0 as usize;
        assert!(a.is_multiple_of(4), "device pointers are word aligned");
        for (i, v) in data.iter().enumerate() {
            self.mem[a / 4 + i] = v.to_bits();
        }
        self.dirty_hi = self.dirty_hi.max((a + data.len() * 4) as u32);
    }

    /// Reads `len` `f32` values from device memory.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds device memory.
    pub fn read_f32(&self, ptr: DevPtr, len: usize) -> Vec<f32> {
        self.read_u32(ptr, len)
            .into_iter()
            .map(f32::from_bits)
            .collect()
    }

    // ---- launching -----------------------------------------------------------

    /// Submits a kernel launch. The kernel becomes visible to the GPU
    /// front-end after the serial host dispatch gap (paper Sec. IV-A).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unschedulable`] if one block of the kernel exceeds
    /// the capacity of an empty SM (it could never be dispatched).
    pub fn launch(&mut self, launch: KernelLaunch) -> Result<KernelId, SimError> {
        let fp = BlockFootprint::of(&launch, self.cfg.warp_size);
        let empty_sm = Sm::new(usize::MAX, &self.cfg);
        if !empty_sm.fits(&fp) || self.effective_sms() == 0 {
            return Err(SimError::Unschedulable {
                program: launch.program.name().to_string(),
            });
        }
        let id = KernelId(self.next_kernel_id);
        self.next_kernel_id += 1;
        // The serial dispatch slot models the CPU driver's launch rate; a
        // per-launch dispatch delay (droop-aware start skew) holds *this*
        // kernel back further without slowing subsequent launches.
        let slot = self.cycle.max(self.next_dispatch_slot) + self.cfg.dispatch_gap_cycles;
        self.next_dispatch_slot = slot;
        let arrival = slot + launch.attrs.dispatch_delay;
        let record = self.trace.kernels.len();
        self.trace.kernels.push(KernelRecord {
            id,
            program: launch.program.name().to_string(),
            attrs: launch.attrs.clone(),
            launched: self.cycle,
            arrival,
            first_dispatch: None,
            completion: None,
            blocks: launch.config.num_blocks(),
            footprint: fp,
        });
        let params: Arc<[u32]> = Arc::from(launch.config.params.into_boxed_slice());
        let attrs = Arc::new(launch.attrs);
        self.kernels.push(KernelRuntime {
            id,
            program: launch.program,
            grid: launch.config.grid,
            block: launch.config.block,
            attrs,
            params,
            footprint: fp,
            arrival,
            blocks_issued: 0,
            blocks_done: 0,
            record,
        });
        if !self.kernels.last().expect("just pushed").is_finished() {
            self.live_kernels += 1;
        }
        self.sched_dirty = true;
        self.emit(EventKind::KernelLaunch, self.cycle, NO_SM, id.0, arrival);
        Ok(id)
    }

    fn pending_blocks(&self) -> u32 {
        self.kernels
            .iter()
            .filter(|k| k.arrival <= self.cycle)
            .map(|k| k.blocks_total() - k.blocks_issued)
            .sum()
    }

    /// Runs one scheduling round: consults the policy and dispatches the
    /// committed assignments (subject to fault-hook rerouting).
    ///
    /// Snapshot, assignment and fit buffers are scratch reused across
    /// rounds ([`SchedScratch`]): after warm-up a round performs no heap
    /// allocations (the kernel attributes are shared via `Arc`, not
    /// cloned). Enforced by the `scheduler_rounds_are_allocation_free`
    /// test.
    fn run_scheduler(&mut self) {
        let mut kernels = std::mem::take(&mut self.sched.kernels);
        kernels.clear();
        kernels.extend(
            self.kernels
                .iter()
                .filter(|k| k.arrival <= self.cycle && !k.is_finished())
                .map(|k| KernelSnapshot {
                    id: k.id,
                    attrs: k.attrs.clone(),
                    arrival: k.arrival,
                    blocks_total: k.blocks_total(),
                    blocks_issued: k.blocks_issued,
                    blocks_done: k.blocks_done,
                    footprint: k.footprint,
                }),
        );
        if kernels.is_empty() {
            self.sched.kernels = kernels;
            return;
        }
        let mut sms = std::mem::take(&mut self.sched.sms);
        sms.clear();
        sms.extend(self.sms.iter().enumerate().map(|(i, s)| SmSnapshot {
            free: s.free(),
            resident_blocks: s.resident_blocks() as u32,
            quarantined: self.quarantined[i],
        }));
        let assignments = std::mem::take(&mut self.sched.assignments);
        let mut view = SchedulerView::from_parts(self.cycle, kernels, sms, assignments);
        self.policy.assign(&mut view);
        let (kernels, sms, assignments) = view.into_parts();

        for a in &assignments {
            let Some(k) = self.kernels.iter().position(|k| k.id == a.kernel) else {
                continue;
            };
            let fp = self.kernels[k].footprint;
            let block_linear = self.kernels[k].blocks_issued;
            if block_linear >= self.kernels[k].blocks_total() {
                continue;
            }
            // Fault hook may misroute the assignment (scheduler fault model).
            // Quarantined SMs are unfit for dispatch *and* for fault-hook
            // reroutes: a misrouting scheduler fault cannot resurrect a
            // removed SM.
            let fits = &mut self.sched.fits;
            fits.clear();
            fits.extend(
                self.sms
                    .iter()
                    .enumerate()
                    .map(|(i, s)| !self.quarantined[i] && s.fits(&fp)),
            );
            let chosen =
                self.fault
                    .reroute_block(a.kernel, block_linear, a.sm, self.sms.len(), &|sm| {
                        fits.get(sm).copied().unwrap_or(false)
                    });
            if !fits.get(chosen).copied().unwrap_or(false) {
                continue; // retried at the next scheduling round
            }
            let kr = &mut self.kernels[k];
            kr.blocks_issued += 1;
            // Event-core pending mirror: one arrived block left the pending
            // pool. Saturating because the stepping core never initializes
            // the counter.
            self.arrived_pending = self.arrived_pending.saturating_sub(1);
            let rec = &mut self.trace.kernels[kr.record];
            if rec.first_dispatch.is_none() {
                rec.first_dispatch = Some(self.cycle);
            }
            let grid = kr.grid;
            let dims = BlockDims {
                ctaid: grid.coords(block_linear),
                ntid: kr.block,
                nctaid: grid,
            };
            let block = BlockState::new(
                kr.id,
                block_linear,
                dims,
                kr.program.clone(),
                kr.params.clone(),
                fp,
                self.cycle,
                self.cycle + BLOCK_DISPATCH_LATENCY,
            );
            self.sms[chosen].admit(block);
            self.emit(
                EventKind::BlockDispatch,
                self.cycle,
                chosen as u32,
                a.kernel.0,
                u64::from(block_linear),
            );
        }
        self.sched.kernels = kernels;
        self.sched.sms = sms;
        self.sched.assignments = assignments;
    }

    /// Advances the clock to the latest kernel arrival and runs exactly one
    /// scheduling round, returning the still-pending block count.
    ///
    /// Hidden test hook: the scheduler allocation fence
    /// (`tests/alloc_free_scheduler.rs`) drives rounds directly without the
    /// full cycle loop. Not part of the supported API.
    #[doc(hidden)]
    pub fn debug_scheduler_round(&mut self) -> u32 {
        let latest_arrival = self.kernels.iter().map(|k| k.arrival).max().unwrap_or(0);
        self.cycle = self.cycle.max(latest_arrival);
        self.run_scheduler();
        self.pending_blocks()
    }

    fn process_completion(&mut self, c: BlockCompletion) {
        self.trace.blocks.push(BlockRecord {
            kernel: c.kernel,
            block: c.block,
            sm: c.sm,
            start: c.start,
            end: c.end,
        });
        self.instructions += c.instrs;
        self.blocks_completed += 1;
        let mut finished = false;
        if let Some(k) = self.kernels.iter_mut().find(|k| k.id == c.kernel) {
            k.blocks_done += 1;
            if k.is_finished() {
                self.trace.kernels[k.record].completion = Some(c.end);
                self.live_kernels -= 1;
                finished = true;
            }
        }
        self.emit(
            EventKind::BlockRetire,
            c.end,
            c.sm as u32,
            c.kernel.0,
            u64::from(c.block),
        );
        if finished {
            self.emit(EventKind::KernelComplete, c.end, NO_SM, c.kernel.0, 0);
        }
        self.sched_dirty = true;
    }

    /// Advances the simulation until every launched kernel has completed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the installed policy stops
    /// dispatching pending work while the device is otherwise quiescent
    /// (policy bug or an unsatisfiable gating condition).
    pub fn run_to_idle(&mut self) -> Result<u64, SimError> {
        self.run_until(|_| false)
    }

    /// Advances the simulation until `done(self)` holds **or** the device
    /// is idle, whichever comes first — the branch-local synchronization
    /// point of a partitioned frame executor: one DAG branch waits for *its
    /// own* kernels ([`Gpu::kernel_finished`]) while sibling branches'
    /// kernels keep executing on their partitions past the return.
    ///
    /// The predicate is evaluated once on entry (a satisfied wait returns
    /// without advancing the clock) and again after every batch of block
    /// completions. The watchdog ([`Gpu::set_cycle_limit`]) applies exactly
    /// as in [`Gpu::run_to_idle`] — which is this method with a
    /// never-satisfied predicate.
    ///
    /// # Errors
    ///
    /// As [`Gpu::run_to_idle`].
    pub fn run_until(&mut self, done: impl FnMut(&Gpu) -> bool) -> Result<u64, SimError> {
        match self.cfg.core {
            CoreKind::Event => self.run_until_event(done, None),
            CoreKind::Stepping => self.run_until_stepping(done, None),
        }
    }

    /// Advances the simulation up to (but not into) cycle `target`, pausing
    /// at the first event cycle `>= target`, and returns whether the device
    /// went idle before reaching it.
    ///
    /// The pause is taken at the very top of a core-loop iteration — before
    /// the watchdog check, arrival maturation and the scheduling round — so
    /// a paused run resumed with [`Gpu::run_to_idle`] (or further
    /// [`Gpu::run_to_cycle`] calls) is **bit-identical** to a straight run:
    /// same issue stream, same stats, same trace, same deadline cut-offs.
    /// This is the checkpoint-recording primitive: pause, call
    /// [`Gpu::snapshot`], resume.
    ///
    /// # Errors
    ///
    /// As [`Gpu::run_to_idle`] (a watchdog or stall *before* `target` is
    /// still reported).
    pub fn run_to_cycle(&mut self, target: u64) -> Result<bool, SimError> {
        match self.cfg.core {
            CoreKind::Event => self.run_until_event(|_| false, Some(target))?,
            CoreKind::Stepping => self.run_until_stepping(|_| false, Some(target))?,
        };
        Ok(self.is_idle())
    }

    /// The original stepping core: every iteration issues on **all** SMs at
    /// the current cycle (non-ready SMs no-op) and re-derives the next event
    /// time by scanning every SM and kernel. Kept verbatim behind
    /// [`CoreKind::Stepping`] as the cross-validation oracle for the
    /// event-driven core.
    fn run_until_stepping(
        &mut self,
        mut done: impl FnMut(&Gpu) -> bool,
        pause_at: Option<u64>,
    ) -> Result<u64, SimError> {
        if done(self) {
            return Ok(self.cycle);
        }
        let mut completions = std::mem::take(&mut self.sched.completions);
        while !self.is_idle() {
            // Pause point ([`Gpu::run_to_cycle`]): checked before any work
            // at this cycle — watchdog included — so resuming replays the
            // iteration exactly as a straight run would have executed it.
            if pause_at.is_some_and(|t| self.cycle >= t) {
                break;
            }
            // Watchdog: the clock strictly advances every iteration, so a
            // runaway kernel (e.g. a fault-corrupted loop counter) is cut
            // off deterministically at the configured limit.
            if let Some(limit) = self.cycle_limit {
                if self.cycle > limit {
                    self.sched.completions = completions;
                    return Err(SimError::DeadlineExceeded {
                        cycle: self.cycle,
                        limit,
                    });
                }
            }
            // Scheduling round (cheap when nothing changed).
            if self.sched_dirty {
                self.sched_dirty = false;
                self.run_scheduler();
            }

            // Issue on every SM at the current cycle.
            completions.clear();
            for sm in &mut self.sms {
                sm.issue(
                    self.cycle,
                    &mut self.mem,
                    &mut self.dirty_hi,
                    &mut self.memsys,
                    self.fault.as_mut(),
                    self.fault_enabled,
                    &mut completions,
                );
            }
            for c in completions.drain(..) {
                self.process_completion(c);
            }
            if self.is_idle() || done(self) {
                break;
            }

            // Advance to the next event.
            let mut next = u64::MAX;
            for sm in &self.sms {
                next = next.min(sm.next_ready_at());
            }
            for k in &self.kernels {
                if !k.is_finished() && k.arrival > self.cycle {
                    next = next.min(k.arrival);
                    self.sched_dirty = true;
                }
            }
            if self.sched_dirty && self.pending_blocks() > 0 {
                next = next.min(self.cycle + 1);
            }
            if next == u64::MAX {
                // Quiescent but unfinished: one last scheduling chance, then
                // report a stall. If the retry admitted work, jump straight
                // to its issue cycle — re-entering the loop at the *same*
                // cycle could re-run the scheduler forever without advancing
                // time under a pathological policy that keeps the device
                // quiescent (e.g. admits work some other hook immediately
                // revokes), so every pass through this branch must strictly
                // advance the clock or terminate.
                self.run_scheduler();
                let ready = self
                    .sms
                    .iter()
                    .map(Sm::next_ready_at)
                    .min()
                    .unwrap_or(u64::MAX);
                if ready == u64::MAX {
                    self.sched.completions = completions;
                    return Err(SimError::Stalled {
                        cycle: self.cycle,
                        pending_blocks: self.pending_blocks(),
                    });
                }
                self.cycle = ready.max(self.cycle + 1);
                continue;
            }
            self.cycle = next.max(self.cycle + 1);
        }
        self.sched.completions = completions;
        Ok(self.cycle)
    }

    /// Runs one scheduling round, re-queueing the wake-up of every SM whose
    /// earliest ready time the round changed (block admissions make an idle
    /// or sleeping SM ready at `dispatch + BLOCK_DISPATCH_LATENCY`).
    fn run_sched_tracked(&mut self) {
        let mut snap = std::mem::take(&mut self.wake_snapshot);
        snap.clear();
        snap.extend(self.sms.iter().map(Sm::next_ready_at));
        self.run_scheduler();
        for (i, &old) in snap.iter().enumerate() {
            let new = self.sms[i].next_ready_at();
            if new != old && new != u64::MAX {
                self.sm_wake.push(new, i);
            }
        }
        self.wake_snapshot = snap;
    }

    /// The event-driven core ([`CoreKind::Event`]): a two-level time queue
    /// ([`TimeQ`]) delivers exactly the SMs with an issuable warp at each
    /// visited cycle, and kernel arrivals are scheduled events instead of
    /// per-iteration scans over the launch table.
    ///
    /// Bit-identical to [`Gpu::run_until_stepping`] by construction:
    ///
    /// * it visits the same cycle sequence — the advance rule computes the
    ///   same `next` from the queue minima that the stepping core derives
    ///   by exhaustive scan;
    /// * skipped SMs are exactly those for which the stepping core's
    ///   [`Sm::issue`] is a provable no-op (no warp issuable at `now`);
    /// * due SMs issue in ascending id order, the stepping core's visit
    ///   order (the shared memory system is order-sensitive);
    /// * scheduling rounds run under the same `sched_dirty` protocol, so
    ///   the (stateful) kernel scheduler policy observes the identical
    ///   sequence of views.
    ///
    /// All event state is rebuilt on entry, so host-side mutations between
    /// runs (launch, reset, cancel, quarantine) need no event bookkeeping.
    ///
    /// Adaptive core selection: on devices up to [`Gpu::FLAT_SM_LIMIT`] SMs
    /// the per-iteration flat minimum over the (cache-resident) wake-time
    /// array is cheaper than time-wheel maintenance — the wheel's push/pop
    /// churn on dense-ready workloads (one push per issue visit) is exactly
    /// the `core_mips` regression on short kernels. The wheel variant takes
    /// over on wider devices, where O(SMs) scans per event would dominate.
    /// Both variants are bit-identical to the stepping oracle (and hence to
    /// each other) — fenced by `tests/cross_core.rs` at both device widths.
    fn run_until_event(
        &mut self,
        done: impl FnMut(&Gpu) -> bool,
        pause_at: Option<u64>,
    ) -> Result<u64, SimError> {
        if self.sms.len() <= Self::FLAT_SM_LIMIT {
            self.run_until_event_flat(done, pause_at)
        } else {
            self.run_until_event_wheel(done, pause_at)
        }
    }

    /// Flat event core for narrow devices: kernel arrivals are heap events
    /// and the pending-block count is mirrored incrementally (the event
    /// core's wins over stepping), while due-SM collection and the advance
    /// rule are flat scans over the per-SM wake cache — O(SMs) per visited
    /// cycle with no queue maintenance at all.
    fn run_until_event_flat(
        &mut self,
        mut done: impl FnMut(&Gpu) -> bool,
        pause_at: Option<u64>,
    ) -> Result<u64, SimError> {
        if done(self) {
            return Ok(self.cycle);
        }
        self.arrivals.clear();
        for k in &self.kernels {
            if !k.is_finished() && k.arrival > self.cycle {
                self.arrivals.push(Reverse((k.arrival, k.id.0)));
            }
        }
        self.arrived_pending = self.pending_blocks();
        self.flat_wakes.clear();
        self.flat_wakes
            .extend(self.sms.iter().map(Sm::next_ready_at));

        let mut completions = std::mem::take(&mut self.sched.completions);
        while !self.is_idle() {
            if pause_at.is_some_and(|t| self.cycle >= t) {
                break;
            }
            if let Some(limit) = self.cycle_limit {
                if self.cycle > limit {
                    self.sched.completions = completions;
                    return Err(SimError::DeadlineExceeded {
                        cycle: self.cycle,
                        limit,
                    });
                }
            }
            // Matured arrivals join the pending pool.
            while let Some(&Reverse((arr, kid))) = self.arrivals.peek() {
                if arr > self.cycle {
                    break;
                }
                self.arrivals.pop();
                if let Some(k) = self.kernels.iter().find(|k| k.id.0 == kid) {
                    if !k.is_finished() {
                        self.arrived_pending += k.blocks_total() - k.blocks_issued;
                    }
                }
            }
            if self.sched_dirty {
                self.sched_dirty = false;
                self.run_scheduler();
                // Admissions may have changed SM wake-ups; re-mirror them.
                self.flat_wakes.clear();
                self.flat_wakes
                    .extend(self.sms.iter().map(Sm::next_ready_at));
            }

            // Issue on every due SM in ascending id order, folding the
            // advance rule's minimum over wake-ups into the same pass. The
            // wake cache answers "due?" in O(1), so no due-queue is needed
            // at this width; hoisting the check here (instead of relying on
            // [`Sm::issue`]'s internal fast path) spares sleeping SMs the
            // out-of-line call itself — visiting them costs one compare.
            // Fusing the min-scan is sound because nothing between here and
            // the advance ([`Gpu::process_completion`], `done`) mutates SM
            // state: a skipped SM's wake is its cached value, an issued
            // SM's is re-read right after it issues — exactly what a
            // post-completion scan would see. On dense workloads (every SM
            // due every cycle) this halves the per-cycle SM traversals and
            // keeps the event core from trailing the stepping core.
            completions.clear();
            let mut next = u64::MAX;
            for (sm, wc) in self.sms.iter_mut().zip(&mut self.flat_wakes) {
                let wake = *wc;
                debug_assert_eq!(
                    wake,
                    sm.next_ready_at(),
                    "flat wake mirror diverged from an SM at cycle {}",
                    self.cycle
                );
                if wake > self.cycle {
                    next = next.min(wake);
                    continue;
                }
                sm.issue(
                    self.cycle,
                    &mut self.mem,
                    &mut self.dirty_hi,
                    &mut self.memsys,
                    self.fault.as_mut(),
                    self.fault_enabled,
                    &mut completions,
                );
                *wc = sm.next_ready_at();
                next = next.min(*wc);
            }
            for c in completions.drain(..) {
                self.process_completion(c);
            }
            if self.is_idle() || done(self) {
                break;
            }

            // Advance: fused flat minimum over SM wake-ups vs the next
            // arrival, with the stepping core's re-dirty rule.
            if let Some(&Reverse((arr, _))) = self.arrivals.peek() {
                next = next.min(arr);
                self.sched_dirty = true;
            }
            debug_assert_eq!(
                self.arrived_pending,
                self.pending_blocks(),
                "incremental pending-block mirror diverged at cycle {}",
                self.cycle
            );
            if self.sched_dirty && self.arrived_pending > 0 {
                next = next.min(self.cycle + 1);
            }
            if next == u64::MAX {
                // Quiescent but unfinished — same last-chance round and
                // stall report as the stepping core.
                self.run_scheduler();
                self.flat_wakes.clear();
                self.flat_wakes
                    .extend(self.sms.iter().map(Sm::next_ready_at));
                let ready = self.flat_wakes.iter().copied().min().unwrap_or(u64::MAX);
                if ready == u64::MAX {
                    self.sched.completions = completions;
                    return Err(SimError::Stalled {
                        cycle: self.cycle,
                        pending_blocks: self.pending_blocks(),
                    });
                }
                self.cycle = ready.max(self.cycle + 1);
                continue;
            }
            self.cycle = next.max(self.cycle + 1);
        }
        self.sched.completions = completions;
        Ok(self.cycle)
    }

    /// Time-wheel event core for wide devices (see [`Gpu::run_until_event`]).
    fn run_until_event_wheel(
        &mut self,
        mut done: impl FnMut(&Gpu) -> bool,
        pause_at: Option<u64>,
    ) -> Result<u64, SimError> {
        if done(self) {
            return Ok(self.cycle);
        }
        self.sm_wake.clear();
        for i in 0..self.sms.len() {
            let w = self.sms[i].next_ready_at();
            if w != u64::MAX {
                self.sm_wake.push(w, i);
            }
            self.due_flags[i] = false;
        }
        self.arrivals.clear();
        for k in &self.kernels {
            if !k.is_finished() && k.arrival > self.cycle {
                self.arrivals.push(Reverse((k.arrival, k.id.0)));
            }
        }
        self.arrived_pending = self.pending_blocks();

        let mut completions = std::mem::take(&mut self.sched.completions);
        while !self.is_idle() {
            if pause_at.is_some_and(|t| self.cycle >= t) {
                break;
            }
            // Watchdog: identical cycle sequence to the stepping core, so
            // deadline cut-offs land on the same cycle.
            if let Some(limit) = self.cycle_limit {
                if self.cycle > limit {
                    self.sched.completions = completions;
                    return Err(SimError::DeadlineExceeded {
                        cycle: self.cycle,
                        limit,
                    });
                }
            }
            // Matured arrivals join the pending pool (the stepping core's
            // `arrival <= cycle` filter does this implicitly).
            while let Some(&Reverse((arr, kid))) = self.arrivals.peek() {
                if arr > self.cycle {
                    break;
                }
                self.arrivals.pop();
                if let Some(k) = self.kernels.iter().find(|k| k.id.0 == kid) {
                    if !k.is_finished() {
                        self.arrived_pending += k.blocks_total() - k.blocks_issued;
                    }
                }
            }
            if self.sched_dirty {
                self.sched_dirty = false;
                self.run_sched_tracked();
            }

            // Collect the SMs whose wake-up is due, deduped and sorted
            // ascending — the stepping core's SM visit order. An entry is
            // stale (SM state changed since it was queued) when the SM's
            // current wake time is in the future; the live entry for that
            // wake is elsewhere in the queue.
            completions.clear();
            let mut due = std::mem::take(&mut self.due_sms);
            due.clear();
            while let Some((c, _)) = self.sm_wake.peek_min() {
                if c > self.cycle {
                    break;
                }
                let (_, sm) = self.sm_wake.pop_min().expect("peeked entry");
                if self.sms[sm].next_ready_at() <= self.cycle && !self.due_flags[sm] {
                    self.due_flags[sm] = true;
                    due.push(sm);
                }
            }
            due.sort_unstable();
            for &sm in &due {
                self.sms[sm].issue(
                    self.cycle,
                    &mut self.mem,
                    &mut self.dirty_hi,
                    &mut self.memsys,
                    self.fault.as_mut(),
                    self.fault_enabled,
                    &mut completions,
                );
                self.due_flags[sm] = false;
                let w = self.sms[sm].next_ready_at();
                if w != u64::MAX {
                    self.sm_wake.push(w, sm);
                }
            }
            self.due_sms = due;
            for c in completions.drain(..) {
                self.process_completion(c);
            }
            if self.is_idle() || done(self) {
                break;
            }

            // Advance to the next event: earliest live SM wake-up vs the
            // next kernel arrival, with the stepping core's re-dirty rule
            // for outstanding arrivals and pending dispatches.
            let mut next = u64::MAX;
            while let Some((c, sm)) = self.sm_wake.peek_min() {
                if self.sms[sm].next_ready_at() == c {
                    next = c;
                    break;
                }
                self.sm_wake.pop_min();
            }
            if let Some(&Reverse((arr, _))) = self.arrivals.peek() {
                next = next.min(arr);
                self.sched_dirty = true;
            }
            debug_assert_eq!(
                self.arrived_pending,
                self.pending_blocks(),
                "incremental pending-block mirror diverged at cycle {}",
                self.cycle
            );
            if self.sched_dirty && self.arrived_pending > 0 {
                next = next.min(self.cycle + 1);
            }
            if next == u64::MAX {
                // Quiescent but unfinished — same last-chance round and
                // stall report as the stepping core.
                self.run_sched_tracked();
                let ready = self
                    .sms
                    .iter()
                    .map(Sm::next_ready_at)
                    .min()
                    .unwrap_or(u64::MAX);
                if ready == u64::MAX {
                    self.sched.completions = completions;
                    return Err(SimError::Stalled {
                        cycle: self.cycle,
                        pending_blocks: self.pending_blocks(),
                    });
                }
                self.cycle = ready.max(self.cycle + 1);
                continue;
            }
            self.cycle = next.max(self.cycle + 1);
        }
        self.sched.completions = completions;
        Ok(self.cycle)
    }

    /// Enables or disables per-instruction issue logging on every SM.
    /// Clears previously accumulated records. The log is the cross-core
    /// validation probe: two [`CoreKind`]s agree iff their drained logs are
    /// identical.
    pub fn set_issue_log(&mut self, enabled: bool) {
        for sm in &mut self.sms {
            sm.set_issue_log(enabled);
        }
    }

    /// Drains every SM's issue log into one device-wide sequence ordered by
    /// `(cycle, sm)` — within one SM and cycle, records keep issue order.
    pub fn drain_issue_log(&mut self) -> Vec<IssueRecord> {
        let mut out = Vec::new();
        for sm in &mut self.sms {
            sm.drain_issue_log(&mut out);
        }
        out.sort_by_key(|r| (r.cycle, r.sm));
        out
    }

    // ---- results -------------------------------------------------------------

    /// The execution trace accumulated so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            instructions: self.instructions,
            per_sm: self.sms.iter().map(Sm::stats).collect(),
            memory: self.memsys.stats(),
            oob_accesses: self.sms.iter().map(|s| s.oob_accesses).sum(),
            kernels_completed: self.kernels.iter().filter(|k| k.is_finished()).count() as u64,
            blocks_completed: self.blocks_completed,
            timeq: self.sm_wake.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::kernel::LaunchConfig;

    fn inc_kernel() -> Arc<crate::program::Program> {
        let mut b = KernelBuilder::new("inc");
        let base = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(base, i);
        let v = b.ldg(a, 0);
        let v1 = b.iadd(v, 1u32);
        b.stg(a, 0, v1);
        b.build().expect("valid").into_shared()
    }

    #[test]
    fn single_kernel_executes_functionally() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(128).expect("alloc");
        gpu.write_u32(buf, &vec![10u32; 128]);
        let cfg = LaunchConfig::new(4u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        assert_eq!(gpu.read_u32(buf, 128), vec![11u32; 128]);
        assert!(gpu.is_idle());
        let st = gpu.stats();
        assert_eq!(st.kernels_completed, 1);
        assert_eq!(st.blocks_completed, 4);
        assert_eq!(st.oob_accesses, 0);
        assert!(st.instructions > 0);
    }

    #[test]
    fn trace_records_block_placement() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(128).expect("alloc");
        let cfg = LaunchConfig::new(4u32, 32u32).param_u32(buf.0);
        let id = gpu
            .launch(KernelLaunch::new(inc_kernel(), cfg).tag("k"))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        let t = gpu.trace();
        assert_eq!(t.blocks_of(id).count(), 4);
        let k = t.kernel(id).expect("kernel record");
        assert!(k.completion.is_some());
        assert!(k.first_dispatch.expect("dispatched") >= k.arrival);
        assert!(k.arrival >= gpu.config().dispatch_gap_cycles);
        // Both SMs used (default scheduler is breadth-first).
        assert_eq!(t.sms_used_by(id).len(), 2);
    }

    #[test]
    fn two_kernels_arrive_serially() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        // Separate buffers: the kernels may overlap on the device, and
        // concurrent increments of one buffer would race (as on real GPUs).
        let buf_a = gpu.alloc_words(64).expect("alloc");
        let buf_b = gpu.alloc_words(64).expect("alloc");
        let a = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf_a.0),
            ))
            .expect("launch");
        let b = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf_b.0),
            ))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        let gap = gpu.config().dispatch_gap_cycles;
        let ka = gpu.trace().kernel(a).expect("a");
        let kb = gpu.trace().kernel(b).expect("b");
        assert_eq!(kb.arrival - ka.arrival, gap, "serial dispatch gap");
        assert_eq!(gpu.read_u32(buf_a, 64), vec![1u32; 64], "kernel a ran");
        assert_eq!(gpu.read_u32(buf_b, 64), vec![1u32; 64], "kernel b ran");
    }

    #[test]
    fn dispatch_delay_defers_arrival_without_slowing_later_launches() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf_a = gpu.alloc_words(64).expect("alloc");
        let buf_b = gpu.alloc_words(64).expect("alloc");
        let a = gpu
            .launch(
                KernelLaunch::new(
                    inc_kernel(),
                    LaunchConfig::new(2u32, 32u32).param_u32(buf_a.0),
                )
                .dispatch_delay(700),
            )
            .expect("launch");
        let b = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf_b.0),
            ))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        let gap = gpu.config().dispatch_gap_cycles;
        let ka = gpu.trace().kernel(a).expect("a");
        let kb = gpu.trace().kernel(b).expect("b");
        assert_eq!(ka.arrival, gap + 700, "delay adds to the dispatch slot");
        assert_eq!(
            kb.arrival,
            2 * gap,
            "a held-back launch does not delay its successors"
        );
        assert!(ka.first_dispatch.expect("dispatched") >= ka.arrival);
        assert_eq!(gpu.read_u32(buf_a, 64), vec![1u32; 64], "delayed ran");
        assert_eq!(gpu.read_u32(buf_b, 64), vec![1u32; 64]);
    }

    #[test]
    fn cancel_in_flight_preserves_clock_memory_and_trace() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(64).expect("alloc");
        gpu.write_u32(buf, &vec![5u32; 64]);
        // First kernel runs to completion; the clock advances.
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(2u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");
        let mid_cycle = gpu.cycle();
        assert!(mid_cycle > 0);

        // Second kernel is cut off by a watchdog, then aborted by the host.
        let buf2 = gpu.alloc_words(64).expect("alloc");
        gpu.set_cycle_limit(Some(mid_cycle + 1));
        let id = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf2.0),
            ))
            .expect("launch");
        assert!(matches!(
            gpu.run_to_idle(),
            Err(SimError::DeadlineExceeded { .. })
        ));
        gpu.cancel_in_flight();
        assert!(gpu.is_idle(), "all in-flight work discarded");
        assert!(gpu.cycle() >= mid_cycle, "the clock is never rewound");
        assert_eq!(
            gpu.read_u32(buf, 64),
            vec![6u32; 64],
            "completed results survive the abort"
        );
        let rec = gpu.trace().kernel(id).expect("aborted kernel traced");
        assert_eq!(rec.completion, None, "a killed launch never completes");

        // The device accepts and completes fresh work afterwards (the
        // re-dispatch path), with the clock continuing monotonically.
        let buf3 = gpu.alloc_words(64).expect("alloc");
        gpu.write_u32(buf3, &vec![7u32; 64]);
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(2u32, 32u32).param_u32(buf3.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("retry runs");
        assert_eq!(gpu.read_u32(buf3, 64), vec![8u32; 64]);
        assert!(gpu.cycle() > mid_cycle);
    }

    #[test]
    fn run_until_returns_at_branch_completion_while_siblings_run_on() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf_a = gpu.alloc_words(32).expect("alloc");
        let buf_b = gpu.alloc_words(64).expect("alloc");
        gpu.write_u32(buf_a, &[1u32; 32]);
        gpu.write_u32(buf_b, &vec![1u32; 64]);
        // Branch A: one block. Branch B: four blocks (finishes later).
        let a = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(1u32, 32u32).param_u32(buf_a.0),
            ))
            .expect("launch a");
        let b = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(4u32, 32u32).param_u32(buf_b.0),
            ))
            .expect("launch b");
        assert!(!gpu.kernel_finished(a));
        let mid = gpu.run_until(|g| g.kernel_finished(a)).expect("wait a");
        assert!(gpu.kernel_finished(a));
        assert!(!gpu.kernel_finished(b), "sibling still in flight");
        assert!(!gpu.is_idle());
        assert_eq!(gpu.read_u32(buf_a, 32), vec![2u32; 32], "a delivered");
        // A satisfied wait returns without advancing the clock.
        assert_eq!(gpu.run_until(|g| g.kernel_finished(a)).expect("noop"), mid);
        assert_eq!(gpu.cycle(), mid);
        // The sibling runs on to completion afterwards.
        gpu.run_to_idle().expect("finish b");
        assert!(gpu.kernel_finished(b));
        assert_eq!(gpu.read_u32(buf_b, 64), vec![2u32; 64]);
        assert!(gpu.cycle() > mid);
    }

    #[test]
    fn cancel_kernels_kills_one_branch_and_leaves_the_sibling_intact() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf_a = gpu.alloc_words(64).expect("alloc");
        let buf_b = gpu.alloc_words(64).expect("alloc");
        gpu.write_u32(buf_a, &vec![5u32; 64]);
        gpu.write_u32(buf_b, &vec![7u32; 64]);
        let a = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf_a.0),
            ))
            .expect("launch a");
        let b = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(buf_b.0),
            ))
            .expect("launch b");
        // Cut execution off almost immediately, then abort only branch A.
        gpu.set_cycle_limit(Some(gpu.config().dispatch_gap_cycles + 20));
        assert!(matches!(
            gpu.run_to_idle(),
            Err(SimError::DeadlineExceeded { .. })
        ));
        gpu.set_cycle_limit(None);
        let clock = gpu.cycle();
        gpu.cancel_kernels(&[a]);
        assert!(gpu.kernel_finished(a), "a cancelled kernel id resolves");
        assert!(!gpu.is_idle(), "the sibling branch is still in flight");
        assert_eq!(gpu.cycle(), clock, "cancellation is clock-invisible");
        gpu.run_to_idle().expect("sibling completes");
        assert_eq!(
            gpu.read_u32(buf_b, 64),
            vec![8u32; 64],
            "the sibling's result is undisturbed by the cancellation"
        );
        let rec = gpu.trace().kernel(a).expect("cancelled kernel traced");
        assert_eq!(rec.completion, None, "a killed launch never completes");
        assert!(gpu.trace().kernel(b).expect("b").completion.is_some());
    }

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let a = gpu.alloc(10).expect("alloc");
        let b = gpu.alloc(10).expect("alloc");
        assert_eq!(a.0 % 256, 0);
        assert_eq!(b.0 % 256, 0);
        assert_ne!(a, b);
        let err = gpu.alloc(u32::MAX).expect_err("too big");
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn unschedulable_kernel_rejected() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        // tiny_2sm allows 256 threads/SM; a 512-thread block can never fit.
        let cfg = LaunchConfig::new(1u32, 512u32);
        let err = gpu
            .launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect_err("unschedulable");
        assert!(matches!(err, SimError::Unschedulable { .. }));
    }

    #[test]
    fn policy_swap_requires_idle() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(32).expect("alloc");
        let cfg = LaunchConfig::new(1u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        let err = gpu.set_policy(Box::new(DefaultScheduler::new()));
        assert_eq!(err, Err(SimError::NotIdle));
        gpu.run_to_idle().expect("run");
        gpu.set_policy(Box::new(DefaultScheduler::new()))
            .expect("idle now");
    }

    #[test]
    fn free_all_resets_allocator() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let a = gpu.alloc(1024).expect("alloc");
        gpu.write_u32(a, &[42]);
        gpu.free_all().expect("idle");
        let b = gpu.alloc(1024).expect("alloc");
        assert_eq!(a, b, "allocator reset");
        assert_eq!(gpu.read_u32(b, 1), vec![0], "memory zeroed");
    }

    #[test]
    fn reset_device_is_observationally_fresh() {
        let run = |gpu: &mut Gpu| {
            let buf = gpu.alloc_words(128).expect("alloc");
            gpu.write_u32(buf, &vec![10u32; 128]);
            let cfg = LaunchConfig::new(4u32, 32u32).param_u32(buf.0);
            gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
                .expect("launch");
            gpu.run_to_idle().expect("run");
            (gpu.read_u32(buf, 128), gpu.trace().clone(), gpu.stats())
        };
        let mut fresh = Gpu::new(GpuConfig::tiny_2sm());
        let expected = run(&mut fresh);

        let mut reused = Gpu::new(GpuConfig::tiny_2sm());
        // Pollute the device: another workload, a fault hook, and stray data.
        let junk = reused.alloc_words(512).expect("alloc");
        reused.write_u32(junk, &vec![0xdeadbeef; 512]);
        reused
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(2u32, 32u32).param_u32(junk.0),
            ))
            .expect("launch");
        reused.run_to_idle().expect("run");
        struct Noisy;
        impl crate::fault::FaultHook for Noisy {}
        reused.set_fault_hook(Box::new(Noisy));

        reused.reset().expect("idle");
        assert_eq!(run(&mut reused), expected, "reset == fresh construction");
    }

    #[test]
    fn reset_retains_installed_policy_and_resets_its_state() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct Probe {
            resets: Arc<AtomicU32>,
        }
        impl KernelSchedulerPolicy for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn assign(&mut self, view: &mut crate::scheduler::SchedulerView) {
                DefaultScheduler::new().assign(view);
            }
            fn reset(&mut self) {
                self.resets.fetch_add(1, Ordering::Relaxed);
            }
        }
        let resets = Arc::new(AtomicU32::new(0));
        let mut gpu = Gpu::with_policy(
            GpuConfig::tiny_2sm(),
            Box::new(Probe {
                resets: resets.clone(),
            }),
        );
        let buf = gpu.alloc_words(32).expect("alloc");
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(1u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");

        gpu.reset().expect("idle");
        assert_eq!(
            gpu.policy_name(),
            "probe",
            "reset must retain the installed policy, not fall back to default"
        );
        assert_eq!(
            resets.load(Ordering::Relaxed),
            1,
            "reset must clear policy state via KernelSchedulerPolicy::reset"
        );

        // The retained policy still schedules on the reset device.
        let buf = gpu.alloc_words(32).expect("alloc");
        gpu.write_u32(buf, &[7; 32]);
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(1u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");
        assert_eq!(gpu.read_u32(buf, 32), vec![8u32; 32]);
    }

    #[test]
    fn force_reset_after_watchdog_cutoff_is_observationally_fresh() {
        let run = |gpu: &mut Gpu| {
            let buf = gpu.alloc_words(128).expect("alloc");
            gpu.write_u32(buf, &vec![10u32; 128]);
            let cfg = LaunchConfig::new(4u32, 32u32).param_u32(buf.0);
            gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
                .expect("launch");
            gpu.run_to_idle().expect("run");
            (gpu.read_u32(buf, 128), gpu.stats())
        };
        let mut fresh = Gpu::new(GpuConfig::tiny_2sm());
        let expected = run(&mut fresh);

        // Cut a run off mid-flight, then rewind in place.
        let mut reused = Gpu::new(GpuConfig::tiny_2sm());
        let buf = reused.alloc_words(128).expect("alloc");
        reused.write_u32(buf, &vec![0xdeadbeef; 128]);
        reused
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
            ))
            .expect("launch");
        reused.set_cycle_limit(Some(1));
        reused.run_to_idle().expect_err("deadline fires");
        assert_eq!(reused.reset(), Err(SimError::NotIdle), "device is busy");

        reused.force_reset();
        assert!(reused.is_idle());
        assert_eq!(run(&mut reused), expected, "force_reset == fresh device");
    }

    #[test]
    fn quarantined_sm_receives_no_blocks() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        assert_eq!(gpu.effective_sms(), 2);
        gpu.quarantine_sm(0);
        gpu.quarantine_sm(0); // idempotent
        assert!(gpu.is_quarantined(0) && !gpu.is_quarantined(1));
        assert_eq!(gpu.quarantined_sms(), vec![0]);
        assert_eq!(gpu.effective_sms(), 1);

        let buf = gpu.alloc_words(128).expect("alloc");
        gpu.write_u32(buf, &vec![3u32; 128]);
        let id = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
            ))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        assert_eq!(gpu.read_u32(buf, 128), vec![4u32; 128], "result correct");
        assert_eq!(
            gpu.trace().sms_used_by(id),
            vec![1],
            "every block placed on the sole healthy SM"
        );
    }

    #[test]
    fn all_sms_quarantined_makes_launches_unschedulable() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        gpu.quarantine_sm(0);
        gpu.quarantine_sm(1);
        assert_eq!(gpu.effective_sms(), 0);
        let err = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(1u32, 32u32),
            ))
            .expect_err("no SM left in service");
        assert!(matches!(err, SimError::Unschedulable { .. }));
    }

    /// Regression: a reused campaign device must start every trial healthy.
    /// Quarantine is a diagnosis of *this* trial's fault injection, not
    /// device configuration, so `reset` clears it (unlike the installed
    /// policy, which is retained).
    #[test]
    fn reset_clears_sm_quarantine() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        gpu.quarantine_sm(1);
        assert_eq!(gpu.effective_sms(), 1);
        gpu.reset().expect("idle");
        assert_eq!(gpu.effective_sms(), 2, "reset restores full capacity");
        assert!(gpu.quarantined_sms().is_empty());

        // Both SMs are back in the dispatch rotation.
        let buf = gpu.alloc_words(128).expect("alloc");
        let id = gpu
            .launch(KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
            ))
            .expect("launch");
        gpu.run_to_idle().expect("run");
        assert_eq!(gpu.trace().sms_used_by(id).len(), 2);
    }

    #[test]
    fn reset_requires_idle() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(32).expect("alloc");
        let cfg = LaunchConfig::new(1u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        assert_eq!(gpu.reset(), Err(SimError::NotIdle));
    }

    /// Regression test for the quiescent-retry path: a policy that never
    /// dispatches anything must yield a prompt `Stalled` error — not an
    /// unbounded scheduler loop at a frozen cycle.
    #[test]
    fn stubborn_policy_stalls_instead_of_spinning() {
        struct Stubborn;
        impl KernelSchedulerPolicy for Stubborn {
            fn name(&self) -> &str {
                "stubborn"
            }
            fn assign(&mut self, _view: &mut crate::scheduler::SchedulerView) {}
        }
        let mut gpu = Gpu::with_policy(GpuConfig::tiny_2sm(), Box::new(Stubborn));
        let buf = gpu.alloc_words(32).expect("alloc");
        let cfg = LaunchConfig::new(1u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        let err = gpu.run_to_idle().expect_err("must stall, not hang");
        assert!(matches!(
            err,
            SimError::Stalled {
                pending_blocks: 1,
                ..
            }
        ));
    }

    /// A policy that withholds work for a while must not trip the stall
    /// detector: the quiescent retry re-runs it and the simulation finishes.
    #[test]
    fn reluctant_policy_eventually_completes() {
        struct Reluctant {
            refusals: u32,
        }
        impl KernelSchedulerPolicy for Reluctant {
            fn name(&self) -> &str {
                "reluctant"
            }
            fn assign(&mut self, view: &mut crate::scheduler::SchedulerView) {
                if self.refusals > 0 {
                    self.refusals -= 1;
                    return;
                }
                DefaultScheduler::new().assign(view);
            }
        }
        let mut gpu = Gpu::with_policy(GpuConfig::tiny_2sm(), Box::new(Reluctant { refusals: 1 }));
        let buf = gpu.alloc_words(64).expect("alloc");
        gpu.write_u32(buf, &vec![1u32; 64]);
        let cfg = LaunchConfig::new(2u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        gpu.run_to_idle().expect("completes after the refusal");
        assert_eq!(gpu.read_u32(buf, 64), vec![2u32; 64]);
    }

    #[test]
    fn watchdog_cuts_off_long_runs_and_reset_disarms_it() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(128).expect("alloc");
        let cfg = LaunchConfig::new(4u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg.clone()))
            .expect("launch");
        gpu.set_cycle_limit(Some(1));
        let err = gpu.run_to_idle().expect_err("deadline must fire");
        assert!(matches!(err, SimError::DeadlineExceeded { limit: 1, .. }));

        // Reset disarms the watchdog; the same workload then completes.
        gpu.reset().expect_err("kernels in flight");
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        gpu.set_cycle_limit(Some(1));
        gpu.reset().expect("idle");
        let buf = gpu.alloc_words(128).expect("alloc");
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("watchdog disarmed by reset");

        // A generous limit does not perturb a normal run.
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        gpu.set_cycle_limit(Some(1_000_000));
        let buf = gpu.alloc_words(128).expect("alloc");
        gpu.write_u32(buf, &vec![1u32; 128]);
        gpu.launch(KernelLaunch::new(
            inc_kernel(),
            LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("finishes well under the limit");
        assert_eq!(gpu.read_u32(buf, 128), vec![2u32; 128]);
    }

    #[test]
    fn makespan_reported_after_completion() {
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(64).expect("alloc");
        let cfg = LaunchConfig::new(2u32, 32u32).param_u32(buf.0);
        gpu.launch(KernelLaunch::new(inc_kernel(), cfg))
            .expect("launch");
        assert_eq!(gpu.trace().makespan(), None);
        gpu.run_to_idle().expect("run");
        assert!(gpu.trace().makespan().is_some());
    }
}
