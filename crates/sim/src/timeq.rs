//! A two-level future-event queue: bucketed time wheel + overflow min-heap.
//!
//! [`TimeQ`] holds `(cycle, payload)` pairs and pops them in strictly
//! ascending `(cycle, payload)` order — the payload is the deterministic
//! tie-break, so two events scheduled for the same cycle always come out in
//! a reproducible order (e.g. ascending SM id) regardless of insertion
//! order. This is the property the event-driven device core relies on for
//! bit-identical traces.
//!
//! The wheel covers a sliding window of [`TimeQ::HORIZON`] cycles starting
//! at an internal base; events inside the window go to O(1) buckets, events
//! before or beyond it go to the overflow binary heap. The two levels are
//! merged on pop by comparing their respective `(cycle, payload)` minima,
//! so callers never observe the split. All storage (bucket vectors and the
//! heap) retains its capacity across [`TimeQ::clear`], making steady-state
//! operation allocation-free after warm-up.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One wheel bucket. Items are kept unsorted on insert and sorted
/// *descending* lazily on first pop, so ascending-payload extraction is a
/// cheap `Vec::pop` from the tail.
#[derive(Debug)]
struct Bucket<P> {
    items: Vec<P>,
    sorted: bool,
}

impl<P> Default for Bucket<P> {
    fn default() -> Self {
        Self {
            items: Vec::new(),
            sorted: false,
        }
    }
}

/// Routing diagnostics of a [`TimeQ`]: how many pushes took the O(1) wheel
/// path vs. spilling to the overflow heap, and how deep the heap ever got.
/// Cumulative across [`TimeQ::clear`] (the queue is rebuilt at every run
/// entry); reset only by [`TimeQ::reset_stats`]. Diagnostics, not
/// architectural state — excluded from [`crate::stats::SimStats`] equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeQStats {
    /// Pushes that landed in a wheel bucket (O(1) path).
    pub wheel_pushes: u64,
    /// Pushes that spilled to the overflow heap (out-of-window cycles).
    pub overflow_pushes: u64,
    /// High-water mark of the overflow heap's length.
    pub max_heap_depth: u64,
}

/// A monotone future-event queue over `(cycle, payload)` pairs with
/// deterministic `(cycle, payload)`-lexicographic pop order.
#[derive(Debug)]
pub struct TimeQ<P> {
    /// Cycle represented by `buckets[cursor]`.
    base: u64,
    /// Wheel index of `base`.
    cursor: usize,
    buckets: Vec<Bucket<P>>,
    /// Entries at cycles outside `[base, base + HORIZON)`.
    overflow: BinaryHeap<Reverse<(u64, P)>>,
    /// Entries currently in the wheel (not counting the overflow heap).
    wheel_len: usize,
    len: usize,
    stats: TimeQStats,
}

impl<P: Ord + Copy> TimeQ<P> {
    /// Width of the wheel window in cycles. Covers the common case (pipeline
    /// and memory latencies of a few hundred cycles); sparser events — long
    /// dispatch gaps, watchdog horizons — spill to the overflow heap.
    pub const HORIZON: usize = 1024;

    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            base: 0,
            cursor: 0,
            buckets: (0..Self::HORIZON).map(|_| Bucket::default()).collect(),
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
            stats: TimeQStats::default(),
        }
    }

    /// Cumulative routing diagnostics (see [`TimeQStats`]).
    pub fn stats(&self) -> TimeQStats {
        self.stats
    }

    /// Zeroes the routing diagnostics (entries are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = TimeQStats::default();
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries, retaining allocated capacity.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for b in &mut self.buckets {
                b.items.clear();
                b.sorted = false;
            }
        }
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
    }

    /// Queues `payload` at `cycle`.
    pub fn push(&mut self, cycle: u64, payload: P) {
        // An empty wheel can slide anywhere: re-anchor it on the incoming
        // cycle so in-window pushes stay on the O(1) bucket path even after
        // the clock jumps far ahead (kernel dispatch gaps, idle stretches).
        if self.wheel_len == 0 && cycle >= self.base + Self::HORIZON as u64 {
            self.base = cycle;
            self.cursor = 0;
        }
        if cycle >= self.base && cycle < self.base + Self::HORIZON as u64 {
            let idx = (self.cursor + (cycle - self.base) as usize) % Self::HORIZON;
            let b = &mut self.buckets[idx];
            b.items.push(payload);
            b.sorted = false;
            self.wheel_len += 1;
            self.stats.wheel_pushes += 1;
        } else {
            // Before the window (late wake-ups) or beyond the horizon.
            self.overflow.push(Reverse((cycle, payload)));
            self.stats.overflow_pushes += 1;
            self.stats.max_heap_depth = self.stats.max_heap_depth.max(self.overflow.len() as u64);
        }
        self.len += 1;
    }

    /// Earliest wheel entry as `(cycle, bucket index)`, advancing the window
    /// past empty buckets as a side effect (amortized O(1) per cycle of
    /// clock progress).
    fn wheel_min(&mut self) -> Option<(u64, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        while self.buckets[self.cursor].items.is_empty() {
            self.cursor = (self.cursor + 1) % Self::HORIZON;
            self.base += 1;
        }
        let idx = self.cursor;
        let b = &mut self.buckets[idx];
        if !b.sorted {
            b.items.sort_unstable_by(|a, c| c.cmp(a));
            b.sorted = true;
        }
        Some((self.base, idx))
    }

    /// The earliest `(cycle, payload)` entry without removing it.
    pub fn peek_min(&mut self) -> Option<(u64, P)> {
        let wheel = self
            .wheel_min()
            .map(|(c, idx)| (c, *self.buckets[idx].items.last().expect("non-empty")));
        let over = self.overflow.peek().map(|&Reverse(e)| e);
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Removes and returns the earliest `(cycle, payload)` entry.
    pub fn pop_min(&mut self) -> Option<(u64, P)> {
        let wheel = self
            .wheel_min()
            .map(|(c, idx)| (c, *self.buckets[idx].items.last().expect("non-empty")));
        let over = self.overflow.peek().map(|&Reverse(e)| e);
        let from_wheel = match (wheel, over) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(w), Some(o)) => w <= o,
        };
        self.len -= 1;
        if from_wheel {
            let (cycle, _) = wheel.expect("checked");
            let payload = self.buckets[self.cursor].items.pop().expect("non-empty");
            self.wheel_len -= 1;
            Some((cycle, payload))
        } else {
            self.overflow.pop().map(|Reverse(e)| e)
        }
    }
}

impl<P: Ord + Copy> Default for TimeQ<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_payload_order() {
        let mut q = TimeQ::new();
        q.push(10, 3usize);
        q.push(10, 1);
        q.push(5, 9);
        q.push(10, 2);
        q.push(7, 0);
        let mut out = Vec::new();
        while let Some(e) = q.pop_min() {
            out.push(e);
        }
        assert_eq!(out, vec![(5, 9), (7, 0), (10, 1), (10, 2), (10, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_and_wheel_merge_correctly() {
        let mut q = TimeQ::new();
        // Far beyond the horizon (overflow) and inside the window (wheel).
        q.push(1_000_000, 1usize);
        q.push(3, 2);
        q.push(1_000_000, 0);
        assert_eq!(q.peek_min(), Some((3, 2)));
        assert_eq!(q.pop_min(), Some((3, 2)));
        assert_eq!(q.pop_min(), Some((1_000_000, 0)));
        assert_eq!(q.pop_min(), Some((1_000_000, 1)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn rebases_after_long_jumps_and_accepts_past_pushes() {
        let mut q = TimeQ::new();
        q.push(50, 1usize);
        assert_eq!(q.pop_min(), Some((50, 1)));
        // Wheel empty: a far-future push re-anchors the window.
        q.push(9_000_000, 2);
        // A push before the re-anchored base still works (overflow path).
        q.push(100, 3);
        assert_eq!(q.pop_min(), Some((100, 3)));
        assert_eq!(q.pop_min(), Some((9_000_000, 2)));
    }

    #[test]
    fn matches_reference_ordering_on_mixed_sequences() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // checked against a multiset reference model (duplicates included).
        let mut q = TimeQ::new();
        let mut reference: std::collections::BTreeMap<(u64, usize), u32> =
            std::collections::BTreeMap::new();
        let mut x = 0x1234_5678_u64;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut clock = 0u64;
        for _ in 0..5000 {
            if step() % 3 != 0 {
                // Mostly near-future pushes, occasionally far jumps.
                let delta = if step() % 10 == 0 {
                    step() % 100_000
                } else {
                    step() % 300
                };
                let e = (clock + delta, (step() % 7) as usize);
                q.push(e.0, e.1);
                *reference.entry(e).or_insert(0) += 1;
            } else if let Some((&e, _)) = reference.iter().next() {
                assert_eq!(q.peek_min(), Some(e));
                let got = q.pop_min().expect("queue and reference agree");
                assert_eq!(got, e, "pop order diverged from reference");
                let n = reference.get_mut(&e).expect("present");
                *n -= 1;
                if *n == 0 {
                    reference.remove(&e);
                }
                clock = clock.max(e.0);
            }
        }
        while let Some((&e, _)) = reference.iter().next() {
            let got = q.pop_min().expect("entry present");
            assert_eq!(got, e, "drain order diverged from reference");
            let n = reference.get_mut(&e).expect("present");
            *n -= 1;
            if *n == 0 {
                reference.remove(&e);
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_exactly_at_the_horizon_boundary_overflows_and_merges() {
        // `base + HORIZON` is the first cycle *outside* the wheel window;
        // an event there must take the overflow path (a wheel bucket would
        // alias it onto `base` via the modulo) and still merge in order
        // with in-window neighbours.
        let h = TimeQ::<usize>::HORIZON as u64;
        let mut q = TimeQ::new();
        q.push(h - 1, 1usize); // last in-window cycle → wheel
        q.push(h, 2); // exactly at the boundary → overflow
        q.push(h + 1, 3); // past the boundary → overflow
        q.push(0, 0); // window start → wheel
        assert_eq!(q.pop_min(), Some((0, 0)));
        assert_eq!(q.pop_min(), Some((h - 1, 1)));
        assert_eq!(q.pop_min(), Some((h, 2)));
        assert_eq!(q.pop_min(), Some((h + 1, 3)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn boundary_events_survive_a_reanchor() {
        // After the wheel empties and re-anchors on a far-future push, the
        // *new* horizon boundary must behave identically — a latent
        // off-by-one in the re-anchored window would misorder these.
        let h = TimeQ::<usize>::HORIZON as u64;
        let mut q = TimeQ::new();
        q.push(10, 0usize);
        assert_eq!(q.pop_min(), Some((10, 0)));
        let base = 1_000_000;
        q.push(base, 1); // re-anchors the empty wheel at `base`
        q.push(base + h - 1, 2); // last cycle of the re-anchored window
        q.push(base + h, 3); // first cycle outside it
        q.push(base - 1, 4); // before the re-anchored base (overflow)
        assert_eq!(q.pop_min(), Some((base - 1, 4)));
        assert_eq!(q.pop_min(), Some((base, 1)));
        assert_eq!(q.pop_min(), Some((base + h - 1, 2)));
        assert_eq!(q.pop_min(), Some((base + h, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_boundary_ties_pop_in_payload_order() {
        // Payload tie-break must hold across the wheel/overflow split: two
        // events at the same cycle, one queued while the cycle was in the
        // window and one while it was not, still pop in payload order.
        let h = TimeQ::<usize>::HORIZON as u64;
        let mut q = TimeQ::new();
        q.push(h + 5, 7usize); // outside the window → overflow
        q.push(3, 9); // keeps the wheel non-empty (no re-anchor)
        assert_eq!(q.pop_min(), Some((3, 9)));
        // Wheel now empty: this push re-anchors the window at h + 5 and
        // lands in a bucket, while payload 7 for the same cycle sits in
        // the overflow heap.
        q.push(h + 5, 2);
        assert_eq!(q.pop_min(), Some((h + 5, 2)));
        assert_eq!(q.pop_min(), Some((h + 5, 7)));
        assert!(q.is_empty());
    }

    #[test]
    fn routing_counters_track_wheel_vs_overflow() {
        let h = TimeQ::<usize>::HORIZON as u64;
        let mut q = TimeQ::new();
        q.push(5, 0usize); // wheel
        q.push(h - 1, 1); // wheel
        q.push(h, 2); // overflow (boundary)
        q.push(h + 100, 3); // overflow
        assert_eq!(q.pop_min(), Some((5, 0)));
        let s = q.stats();
        assert_eq!(s.wheel_pushes, 2);
        assert_eq!(s.overflow_pushes, 2);
        assert_eq!(s.max_heap_depth, 2);
        // Counters survive clear (cumulative across run rebuilds) …
        q.clear();
        assert_eq!(q.stats().overflow_pushes, 2);
        // … and reset only explicitly.
        q.reset_stats();
        assert_eq!(q.stats(), TimeQStats::default());
    }

    #[test]
    fn clear_retains_capacity_and_resets_state() {
        let mut q = TimeQ::new();
        for i in 0..100u64 {
            q.push(i, 0usize);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
        q.push(7, 4);
        assert_eq!(q.pop_min(), Some((7, 4)));
    }
}
