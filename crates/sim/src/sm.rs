//! Streaming multiprocessor: block residency (occupancy), greedy-then-oldest
//! warp scheduling, and translation of execution effects into timing.

use crate::block::BlockState;
use crate::config::{GpuConfig, WarpSchedPolicy};
use crate::exec::{step_warp, ExecCtx, StepEffect};
use crate::fault::FaultHook;
use crate::isa::ExecUnit;
use crate::kernel::{BlockFootprint, KernelId};
use crate::mem::system::MemorySystem;
use crate::warp::WarpState;

/// Per-SM resource pools consumed by resident blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Resident threads.
    pub threads: u32,
    /// Resident warps.
    pub warps: u32,
    /// Allocated registers.
    pub registers: u32,
    /// Allocated shared memory bytes.
    pub shared_mem: u32,
    /// Resident blocks.
    pub blocks: u32,
}

/// A completed block, reported back to the GPU for trace/bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCompletion {
    /// Owning kernel.
    pub kernel: KernelId,
    /// Linear block index.
    pub block: u32,
    /// SM that executed the block.
    pub sm: usize,
    /// Dispatch cycle.
    pub start: u64,
    /// Completion cycle.
    pub end: u64,
    /// Dynamic instructions executed by the block's warps.
    pub instrs: u64,
}

/// Per-SM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued.
    pub instrs_issued: u64,
    /// Cycles in which at least one instruction issued.
    pub busy_cycles: u64,
    /// Blocks executed to completion.
    pub blocks_completed: u64,
}

/// One dynamic instruction issued by an SM warp scheduler — the unit of the
/// cross-core trace diff ([`crate::config::CoreKind`]): two cores agree iff
/// their issue logs are identical record for record, and the first
/// divergence pinpoints (cycle, SM, warp) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Cycle the instruction issued.
    pub cycle: u64,
    /// Issuing SM.
    pub sm: usize,
    /// Owning kernel.
    pub kernel: KernelId,
    /// Linear block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: usize,
}

/// The architectural state of one SM captured by a device snapshot
/// ([`crate::gpu::DeviceSnapshot`]): resident blocks with their full warp
/// state, resource usage, the warp-scheduler bookmark, the wake-time mirror,
/// counters and the issue log. Scratch buffers (ready masks, coalescing
/// buffers) are rebuilt per [`Sm::issue`] call and deliberately excluded.
#[derive(Debug, Clone)]
pub struct SmState {
    used: ResourceUsage,
    blocks: Vec<BlockState>,
    greedy: Option<(KernelId, u32, usize)>,
    times: Vec<Vec<u64>>,
    next_wake: u64,
    log_enabled: bool,
    log: Vec<IssueRecord>,
    stats: SmStats,
    oob_accesses: u64,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM identifier.
    pub id: usize,
    limits: ResourceUsage,
    schedulers: usize,
    alu_latency: u32,
    sfu_latency: u32,
    shared_latency: u32,
    barrier_latency: u32,
    used: ResourceUsage,
    blocks: Vec<BlockState>,
    warp_policy: WarpSchedPolicy,
    /// GTO bookmark: (kernel, block_linear, warp_idx). Under LRR this is
    /// the *last issued* warp, used as the rotation point.
    greedy: Option<(KernelId, u32, usize)>,
    /// Per-block ready masks, index-aligned with `blocks` *within one
    /// [`Sm::issue`] call*: bit `wi` set ⟺ `blocks[bi].warps[wi]` may issue
    /// at the call's cycle. Rebuilt on entry (one pass over resident
    /// warps), then updated incrementally per issued instruction so both
    /// warp pickers are O(1) mask operations — no per-pick rescan, no
    /// per-pick allocation. Retains capacity across calls.
    ready: Vec<u64>,
    /// SoA mirror of per-warp wake-up times, one row per resident block:
    /// `times[bi][wi]` is the warp's `ready_at` while it is
    /// [`WarpState::Ready`], else `u64::MAX`. [`Warp`] structs are scattered
    /// across cache lines, so deriving ready masks and `next_ready_at` from
    /// this dense mirror instead of walking the structs turns both scans
    /// into flat, vectorizable compare/min loops. Kept in lockstep with
    /// every scheduling-state mutation (admit, issue effects, barrier
    /// release, block completion, discard).
    times: Vec<Vec<u64>>,
    /// Cached `min(ready_at)` over all [`WarpState::Ready`] warps
    /// (`u64::MAX` when none): the O(1) answer of [`Sm::next_ready_at`].
    /// Maintained on every mutation of warp scheduling state — folded on
    /// [`Sm::admit`], recomputed at the end of every productive
    /// [`Sm::issue`] call and on block discard. `debug_assert`-checked
    /// against the exhaustive scan on every read.
    next_wake: u64,
    /// When set, every issued instruction is appended to `log`.
    log_enabled: bool,
    /// Per-instruction issue log (cross-core validation; empty and
    /// cost-free unless [`Sm::set_issue_log`] enabled it).
    log: Vec<IssueRecord>,
    /// Reusable coalesced-transaction scratch handed to the interpreter
    /// ([`crate::exec::ExecCtx::txs`]); allocated once per SM.
    scratch_txs: crate::mem::coalesce::TxBuf,
    /// Reusable atomic-lane-address scratch
    /// ([`crate::exec::ExecCtx::atom_addrs`]).
    scratch_addrs: crate::exec::LaneAddrs,
    stats: SmStats,
    /// Out-of-bounds accesses observed on this SM.
    pub oob_accesses: u64,
}

/// First set bit of `ready[from..]` as `(block index, warp index)` — the
/// oldest issuable warp in (block arrival, warp index) order at or after
/// block `from`.
#[inline]
fn first_set(ready: &[u64], from: usize) -> Option<(usize, usize)> {
    ready
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, &m)| m != 0)
        .map(|(bi, &m)| (bi, m.trailing_zeros() as usize))
}

/// The ready mask of one block at cycle `now` (bit per issuable warp).
#[inline]
fn ready_mask(block: &BlockState, now: u64) -> u64 {
    let mut m = 0u64;
    for (wi, w) in block.warps.iter().enumerate() {
        if w.is_issuable(now) {
            m |= 1u64 << wi;
        }
    }
    m
}

/// Rebuilds one SoA wake-time row from a block's warps: `ready_at` for
/// [`WarpState::Ready`] warps, `u64::MAX` otherwise.
#[inline]
fn fill_times_row(row: &mut Vec<u64>, block: &BlockState) {
    row.clear();
    row.extend(block.warps.iter().map(|w| {
        if w.state == WarpState::Ready {
            w.ready_at
        } else {
            u64::MAX
        }
    }));
}

/// The ready mask of one block derived from its SoA wake-time row: bit per
/// warp whose wake time has matured. Identical to [`ready_mask`] by the row
/// invariant, but a flat compare loop instead of a struct walk.
#[inline]
fn ready_mask_from_times(row: &[u64], now: u64) -> u64 {
    let mut m = 0u64;
    for (wi, &t) in row.iter().enumerate() {
        m |= u64::from(t <= now) << wi;
    }
    m
}

impl Sm {
    /// Creates an empty SM with limits taken from `cfg`.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        Self {
            id,
            limits: ResourceUsage {
                threads: cfg.max_threads_per_sm as u32,
                warps: cfg.max_warps_per_sm as u32,
                registers: cfg.registers_per_sm as u32,
                shared_mem: cfg.shared_mem_per_sm as u32,
                blocks: cfg.max_blocks_per_sm as u32,
            },
            schedulers: cfg.schedulers_per_sm,
            alu_latency: cfg.timing.alu_latency,
            sfu_latency: cfg.timing.sfu_latency,
            shared_latency: cfg.timing.shared_latency,
            barrier_latency: cfg.timing.barrier_latency,
            used: ResourceUsage::default(),
            blocks: Vec::new(),
            warp_policy: cfg.warp_scheduler,
            greedy: None,
            ready: Vec::new(),
            times: Vec::new(),
            next_wake: u64::MAX,
            log_enabled: false,
            log: Vec::new(),
            scratch_txs: crate::mem::coalesce::TxBuf::new(),
            scratch_addrs: crate::exec::LaneAddrs::new(),
            stats: SmStats::default(),
            oob_accesses: 0,
        }
    }

    /// True if a block with footprint `fp` can be admitted right now.
    pub fn fits(&self, fp: &BlockFootprint) -> bool {
        self.used.threads + fp.threads <= self.limits.threads
            && self.used.warps + fp.warps <= self.limits.warps
            && self.used.registers + fp.registers <= self.limits.registers
            && self.used.shared_mem + fp.shared_mem <= self.limits.shared_mem
            && self.used.blocks < self.limits.blocks
    }

    /// Admits a block.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit (the GPU checks [`Sm::fits`] first).
    pub fn admit(&mut self, block: BlockState) {
        assert!(
            self.fits(&block.footprint),
            "block admitted beyond capacity"
        );
        self.used.threads += block.footprint.threads;
        self.used.warps += block.footprint.warps;
        self.used.registers += block.footprint.registers;
        self.used.shared_mem += block.footprint.shared_mem;
        self.used.blocks += 1;
        for w in &block.warps {
            if w.state == WarpState::Ready {
                self.next_wake = self.next_wake.min(w.ready_at);
            }
        }
        let mut row = Vec::with_capacity(block.warps.len());
        fill_times_row(&mut row, &block);
        self.times.push(row);
        self.blocks.push(block);
    }

    /// Remaining capacity.
    pub fn free(&self) -> ResourceUsage {
        ResourceUsage {
            threads: self.limits.threads - self.used.threads,
            warps: self.limits.warps - self.used.warps,
            registers: self.limits.registers - self.used.registers,
            shared_mem: self.limits.shared_mem - self.used.shared_mem,
            blocks: self.limits.blocks - self.used.blocks,
        }
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// True when no blocks are resident.
    pub fn is_idle(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Per-SM counters.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Earliest cycle at which some warp can issue, or `u64::MAX` if no warp
    /// is issuable (idle, all at barriers, or finished). O(1): answered from
    /// the incrementally-maintained cache, cross-checked against the
    /// exhaustive scan in debug builds.
    pub fn next_ready_at(&self) -> u64 {
        debug_assert_eq!(
            self.next_wake,
            self.scan_next_ready_structs(),
            "cached next_wake diverged from the exhaustive warp scan on SM {}",
            self.id
        );
        self.next_wake
    }

    /// O(warps) recomputation of [`Sm::next_ready_at`] from the dense SoA
    /// wake-time mirror (a flat min over small `u64` rows — vectorizable,
    /// no pointer chasing through [`Warp`] structs).
    fn scan_next_ready(&self) -> u64 {
        let mut next = u64::MAX;
        for row in &self.times {
            for &t in row {
                next = next.min(t);
            }
        }
        next
    }

    /// Exhaustive reference computation of [`Sm::next_ready_at`] straight
    /// from the warp structs, bypassing the SoA mirror — the oracle the
    /// incremental cache and mirror are validated against.
    fn scan_next_ready_structs(&self) -> u64 {
        let mut next = u64::MAX;
        for b in &self.blocks {
            for w in &b.warps {
                if w.state == WarpState::Ready {
                    next = next.min(w.ready_at);
                }
            }
        }
        next
    }

    /// Exhaustive-scan reference for [`Sm::next_ready_at`], exposed so
    /// property tests can cross-check the incremental cache from outside the
    /// crate. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_exhaustive_next_ready(&self) -> u64 {
        self.scan_next_ready_structs()
    }

    /// Captures the SM's architectural state for a device snapshot.
    pub fn snapshot_state(&self) -> SmState {
        SmState {
            used: self.used,
            blocks: self.blocks.clone(),
            greedy: self.greedy,
            times: self.times.clone(),
            next_wake: self.next_wake,
            log_enabled: self.log_enabled,
            log: self.log.clone(),
            stats: self.stats,
            oob_accesses: self.oob_accesses,
        }
    }

    /// Restores state captured by [`Sm::snapshot_state`], replacing all
    /// resident blocks and counters. Scratch buffers are cleared; they are
    /// rebuilt on the next [`Sm::issue`] call.
    pub fn restore_state(&mut self, state: &SmState) {
        self.used = state.used;
        self.blocks.clone_from(&state.blocks);
        self.greedy = state.greedy;
        self.times.clone_from(&state.times);
        self.next_wake = state.next_wake;
        self.log_enabled = state.log_enabled;
        self.log.clone_from(&state.log);
        self.stats = state.stats;
        self.oob_accesses = state.oob_accesses;
        self.ready.clear();
    }

    /// Enables or disables per-instruction issue logging. Clears any
    /// previously accumulated records.
    pub fn set_issue_log(&mut self, enabled: bool) {
        self.log_enabled = enabled;
        self.log.clear();
    }

    /// Moves accumulated issue records into `out`, preserving issue order.
    pub fn drain_issue_log(&mut self, out: &mut Vec<IssueRecord>) {
        out.append(&mut self.log);
    }

    /// Discards all resident blocks without completing them and releases
    /// their resources — the watchdog-abort path ([`crate::gpu::Gpu`]'s
    /// `force_reset`). Execution state of the discarded blocks is dropped.
    pub fn discard_blocks(&mut self) {
        self.blocks.clear();
        self.times.clear();
        self.used = ResourceUsage::default();
        self.greedy = None;
        self.next_wake = u64::MAX;
    }

    /// Discards only the resident blocks of the given kernels, releasing
    /// their resources — the branch-local abort path of a partitioned frame
    /// executor ([`crate::gpu::Gpu::cancel_kernels`]): sibling kernels on
    /// this SM keep executing undisturbed.
    pub fn discard_blocks_of(&mut self, kernels: &[KernelId]) {
        let mut bi = 0;
        while bi < self.blocks.len() {
            if !kernels.contains(&self.blocks[bi].kernel) {
                bi += 1;
                continue;
            }
            let b = self.blocks.remove(bi);
            self.times.remove(bi);
            self.used.threads -= b.footprint.threads;
            self.used.warps -= b.footprint.warps;
            self.used.registers -= b.footprint.registers;
            self.used.shared_mem -= b.footprint.shared_mem;
            self.used.blocks -= 1;
        }
        // The issue bookmark may point at a discarded block; drop it (the
        // scheduler re-establishes it on the next issue).
        if let Some((k, _, _)) = self.greedy {
            if kernels.contains(&k) {
                self.greedy = None;
            }
        }
        self.next_wake = self.scan_next_ready();
    }

    /// Resets the SM to its post-construction state: counters cleared,
    /// scheduling bookmark dropped. The SM must be idle (no resident
    /// blocks); resource pools are already released at that point.
    ///
    /// # Panics
    ///
    /// Panics if blocks are still resident (callers check [`Sm::is_idle`]).
    pub fn reset(&mut self) {
        assert!(self.blocks.is_empty(), "reset on a busy SM");
        self.used = ResourceUsage::default();
        self.greedy = None;
        self.next_wake = u64::MAX;
        // Keep `log_enabled` (a validator may reset between runs); drop the
        // accumulated records of the previous run.
        self.log.clear();
        self.stats = SmStats::default();
        self.oob_accesses = 0;
        self.times.clear();
    }

    /// Issues up to `schedulers_per_sm` instructions at cycle `now`.
    ///
    /// `global_dirty` is the device-wide store high-water mark (see
    /// [`crate::exec::ExecCtx::global_dirty`]); `fault_enabled` is false when
    /// `fault` is the fault-free default, enabling the no-fault fast path.
    ///
    /// Completed blocks are removed, their resources released, and a
    /// [`BlockCompletion`] pushed to `completions`.
    #[allow(clippy::too_many_arguments)] // device-shared state, one call site in Gpu
    pub fn issue(
        &mut self,
        now: u64,
        global_mem: &mut [u32],
        global_dirty: &mut u32,
        memsys: &mut MemorySystem,
        fault: &mut dyn FaultHook,
        fault_enabled: bool,
        completions: &mut Vec<BlockCompletion>,
    ) {
        // Fast path: with no warp issuable at `now`, every legacy candidate
        // scan fails, every scheduler slot breaks immediately, and no state
        // changes — visiting the SM is a pure no-op. The cached wake-up time
        // answers that in O(1) without touching any warp.
        if self.next_wake > now {
            return;
        }

        // One pass over the flat wake-time mirror builds a ready bit per
        // (block, warp); each scheduler slot then picks via O(1) mask
        // operations and the effect handlers keep the masks current
        // incrementally. Deriving the masks from `times` instead of the
        // warp structs turns the per-visit rebuild into a dense compare
        // loop over contiguous `u64`s rather than a pointer-chase across
        // cache-line-sparse `Warp`s.
        self.ready.clear();
        for row in &self.times {
            self.ready.push(ready_mask_from_times(row, now));
        }

        let mut issued = 0usize;
        for _ in 0..self.schedulers {
            // Candidate selection. Mask bits replicate the legacy scans
            // exactly: ascending (block arrival, warp index) order.
            let mut pick: Option<(usize, usize)> = None;
            match self.warp_policy {
                WarpSchedPolicy::Gto => {
                    // Greedy warp first, then oldest (blocks are kept in
                    // arrival order; warps by index).
                    if let Some((gk, gb, gw)) = self.greedy {
                        if let Some(bi) = self
                            .blocks
                            .iter()
                            .position(|b| b.kernel == gk && b.block_linear == gb)
                        {
                            if self.ready[bi] & (1u64 << gw) != 0 {
                                pick = Some((bi, gw));
                            }
                        }
                    }
                    if pick.is_none() {
                        pick = first_set(&self.ready, 0);
                    }
                }
                WarpSchedPolicy::Lrr => {
                    // Rotate: first ready warp strictly after the last
                    // issued one in (block, warp) order, wrapping around.
                    let anchor = self.greedy.and_then(|(gk, gb, gw)| {
                        self.blocks
                            .iter()
                            .position(|b| b.kernel == gk && b.block_linear == gb)
                            .map(|bi| (bi, gw))
                    });
                    pick = match anchor {
                        Some((abi, gw)) => {
                            // Ready warps of the anchor block strictly after
                            // the anchor warp, then later blocks, then wrap
                            // to the globally first ready warp.
                            let above = if gw >= 63 {
                                0
                            } else {
                                self.ready[abi] & (!0u64 << (gw + 1))
                            };
                            if above != 0 {
                                Some((abi, above.trailing_zeros() as usize))
                            } else {
                                first_set(&self.ready, abi + 1)
                                    .or_else(|| first_set(&self.ready, 0))
                            }
                        }
                        None => first_set(&self.ready, 0),
                    };
                }
            }
            let Some((bi, wi)) = pick else { break };

            let sm_id = self.id;
            let alu_latency = self.alu_latency;
            let sfu_latency = self.sfu_latency;
            let shared_latency = self.shared_latency;
            let block = &mut self.blocks[bi];
            let txs = &mut self.scratch_txs;
            let atom_addrs = &mut self.scratch_addrs;
            let kernel = block.kernel;
            let block_linear = block.block_linear;
            let dims = block.dims;
            let mut oob = 0u64;
            let effect = {
                // Borrow the block's fields disjointly: the program and
                // params stay behind their Arcs (no per-instruction clone).
                let BlockState {
                    program,
                    params,
                    shared,
                    warps,
                    ..
                } = block;
                let warp = &mut warps[wi];
                let mut ctx = ExecCtx {
                    global_mem,
                    shared_mem: shared,
                    params: &params[..],
                    dims,
                    sm_id,
                    cycle: now,
                    kernel,
                    block: block_linear,
                    fault,
                    fault_enabled,
                    oob_accesses: &mut oob,
                    global_dirty,
                    txs: &mut *txs,
                    atom_addrs: &mut *atom_addrs,
                };
                step_warp(warp, program.decoded(), &mut ctx)
            };
            self.oob_accesses += oob;
            issued += 1;
            self.stats.instrs_issued += 1;
            self.greedy = Some((kernel, block_linear, wi));
            if self.log_enabled {
                self.log.push(IssueRecord {
                    cycle: now,
                    sm: sm_id,
                    kernel,
                    block: block_linear,
                    warp: wi,
                });
            }

            let bit = 1u64 << wi;
            match effect {
                StepEffect::Compute(unit) => {
                    let lat = match unit {
                        ExecUnit::Sfu => sfu_latency,
                        ExecUnit::SharedMem => shared_latency,
                        _ => alu_latency,
                    };
                    let w = &mut block.warps[wi];
                    w.ready_at = now + u64::from(lat);
                    self.times[bi][wi] = w.ready_at;
                    if w.ready_at > now {
                        self.ready[bi] &= !bit;
                    }
                }
                StepEffect::SharedMem => {
                    let w = &mut block.warps[wi];
                    w.ready_at = now + u64::from(shared_latency);
                    self.times[bi][wi] = w.ready_at;
                    if w.ready_at > now {
                        self.ready[bi] &= !bit;
                    }
                }
                StepEffect::GlobalMem => {
                    let done = memsys.access(sm_id, now, txs.as_slice());
                    let w = &mut block.warps[wi];
                    w.ready_at = done.max(now + 1);
                    self.times[bi][wi] = w.ready_at;
                    self.ready[bi] &= !bit;
                }
                StepEffect::Atomic => {
                    let mut done = now + 1;
                    for &a in atom_addrs.as_slice() {
                        done = done.max(memsys.access_atomic(now, a));
                    }
                    let w = &mut block.warps[wi];
                    w.ready_at = done;
                    self.times[bi][wi] = w.ready_at;
                    self.ready[bi] &= !bit;
                }
                StepEffect::Barrier => {
                    block.barrier_arrived += 1;
                    if block.try_release_barrier(now, self.barrier_latency) {
                        // Barrier released: warp states changed en masse.
                        self.ready[bi] = ready_mask(block, now);
                        fill_times_row(&mut self.times[bi], block);
                    } else {
                        // This warp moved to AtBarrier.
                        self.ready[bi] &= !bit;
                        self.times[bi][wi] = u64::MAX;
                    }
                    self.greedy = None;
                }
                StepEffect::Finished => {
                    block.warps_running -= 1;
                    // A finished warp may unblock a pending barrier.
                    if block.try_release_barrier(now, self.barrier_latency) {
                        self.ready[bi] = ready_mask(block, now);
                        fill_times_row(&mut self.times[bi], block);
                    } else {
                        self.ready[bi] &= !bit;
                        self.times[bi][wi] = u64::MAX;
                    }
                    self.greedy = None;
                    if block.is_done() {
                        let instrs: u64 = block.warps.iter().map(|w| w.instrs).sum();
                        let fp = block.footprint;
                        completions.push(BlockCompletion {
                            kernel,
                            block: block_linear,
                            sm: sm_id,
                            start: block.start_cycle,
                            end: now,
                            instrs,
                        });
                        self.stats.blocks_completed += 1;
                        self.blocks.remove(bi);
                        self.ready.remove(bi);
                        self.times.remove(bi);
                        self.used.threads -= fp.threads;
                        self.used.warps -= fp.warps;
                        self.used.registers -= fp.registers;
                        self.used.shared_mem -= fp.shared_mem;
                        self.used.blocks -= 1;
                    }
                }
            }
        }
        if issued > 0 {
            self.stats.busy_cycles += 1;
        }
        // Re-derive the cached wake-up time. One O(warps) pass per
        // *productive* visit (the event core never calls into a sleeping
        // SM), amortized against the >=1 instruction issued above.
        self.next_wake = self.scan_next_ready();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockDims;
    use crate::builder::KernelBuilder;
    use crate::fault::NoFaults;
    use crate::kernel::Dim3;
    use std::sync::Arc;

    fn mk_sm() -> (Sm, MemorySystem, Vec<u32>) {
        let cfg = GpuConfig::tiny_2sm();
        (
            Sm::new(0, &cfg),
            MemorySystem::new(&cfg),
            vec![0u32; cfg.global_mem_bytes / 4],
        )
    }

    fn mk_block(kernel: u64, linear: u32, threads: u32, shared: u32) -> BlockState {
        let mut b = KernelBuilder::new("t");
        let tid = b.special(crate::isa::SpecialReg::TidX);
        let _ = b.iadd(tid, 1u32);
        let program = b.build().expect("valid").into_shared();
        let fp = BlockFootprint {
            threads,
            warps: threads.div_ceil(32),
            registers: threads * u32::from(program.regs_per_thread()),
            shared_mem: shared,
        };
        BlockState::new(
            KernelId(kernel),
            linear,
            BlockDims {
                ctaid: (linear, 0, 0),
                ntid: Dim3::x(threads),
                nctaid: Dim3::x(16),
            },
            program,
            Arc::from(vec![].into_boxed_slice()),
            fp,
            0,
            0,
        )
    }

    #[test]
    fn admission_respects_limits() {
        let (mut sm, _, _) = mk_sm();
        // tiny_2sm: 256 threads/SM, 4 blocks/SM.
        let b = mk_block(0, 0, 128, 0);
        assert!(sm.fits(&b.footprint));
        sm.admit(b);
        let b2 = mk_block(0, 1, 128, 0);
        assert!(sm.fits(&b2.footprint));
        sm.admit(b2);
        let b3 = mk_block(0, 2, 32, 0);
        assert!(!sm.fits(&b3.footprint), "thread limit reached");
        assert_eq!(sm.resident_blocks(), 2);
        assert_eq!(sm.free().threads, 0);
    }

    #[test]
    fn shared_mem_limits_occupancy() {
        let (mut sm, _, _) = mk_sm();
        let b = mk_block(0, 0, 32, 12 * 1024);
        sm.admit(b);
        let b2 = mk_block(0, 1, 32, 12 * 1024);
        let fits = sm.fits(&b2.footprint);
        // tiny_2sm has 16 KiB shared per SM.
        assert!(!fits, "second 12 KiB block must not fit in 16 KiB");
    }

    #[test]
    fn block_runs_to_completion_and_releases_resources() {
        let (mut sm, mut memsys, mut mem) = mk_sm();
        sm.admit(mk_block(7, 3, 64, 256));
        let mut done = Vec::new();
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        let mut now = 0u64;
        while done.is_empty() {
            sm.issue(
                now,
                &mut mem,
                &mut dirty,
                &mut memsys,
                &mut hook,
                false,
                &mut done,
            );
            if !done.is_empty() {
                break;
            }
            now = now.max(sm.next_ready_at()).max(now + 1);
            assert!(now < 10_000, "block must finish quickly");
        }
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert_eq!(c.kernel, KernelId(7));
        assert_eq!(c.block, 3);
        assert_eq!(c.sm, 0);
        assert!(c.end >= c.start);
        assert!(c.instrs >= 2 * 2, "2 warps x >=2 instructions");
        assert!(sm.is_idle());
        assert_eq!(sm.free().threads, 256);
        assert_eq!(sm.stats().blocks_completed, 1);
        assert!(sm.stats().instrs_issued > 0);
    }

    #[test]
    fn next_ready_reflects_latency() {
        let (mut sm, mut memsys, mut mem) = mk_sm();
        sm.admit(mk_block(0, 0, 32, 0));
        let mut done = Vec::new();
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        sm.issue(
            0,
            &mut mem,
            &mut dirty,
            &mut memsys,
            &mut hook,
            false,
            &mut done,
        );
        let next = sm.next_ready_at();
        assert!(next > 0, "issued warp has pending latency");
        assert_ne!(next, u64::MAX);
    }

    #[test]
    fn barrier_synchronizes_two_warps() {
        let mut b = KernelBuilder::new("bar");
        let tid = b.special(crate::isa::SpecialReg::TidX);
        let off = b.ishl(tid, 2u32);
        b.sts(off, 0, tid);
        b.bar();
        // After the barrier, read neighbour (tid+1) % 64.
        let next = b.iadd(tid, 1u32);
        let wrapped = b.irem(next, 64u32);
        let noff = b.ishl(wrapped, 2u32);
        let _ = b.lds(noff, 0);
        let program = b.build().expect("valid").into_shared();

        let fp = BlockFootprint {
            threads: 64,
            warps: 2,
            registers: 64 * u32::from(program.regs_per_thread()),
            shared_mem: 256,
        };
        let block = BlockState::new(
            KernelId(0),
            0,
            BlockDims {
                ctaid: (0, 0, 0),
                ntid: Dim3::x(64),
                nctaid: Dim3::x(1),
            },
            program,
            Arc::from(vec![].into_boxed_slice()),
            fp,
            0,
            0,
        );
        let (mut sm, mut memsys, mut mem) = mk_sm();
        sm.admit(block);
        let mut done = Vec::new();
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        let mut now = 0u64;
        while done.is_empty() {
            sm.issue(
                now,
                &mut mem,
                &mut dirty,
                &mut memsys,
                &mut hook,
                false,
                &mut done,
            );
            if !done.is_empty() {
                break;
            }
            let next = sm.next_ready_at();
            assert!(next != u64::MAX, "deadlock: barrier never released");
            now = now.max(next).max(now + 1);
            assert!(now < 100_000);
        }
        assert_eq!(done.len(), 1);
    }
}

#[cfg(test)]
mod warp_sched_tests {
    use super::*;
    use crate::block::BlockDims;
    use crate::builder::KernelBuilder;
    use crate::config::WarpSchedPolicy;
    use crate::fault::NoFaults;
    use crate::kernel::Dim3;
    use std::sync::Arc;

    /// A block whose warps each execute a long ALU chain, so issue order is
    /// observable.
    fn mk_block(warps: u32) -> BlockState {
        let mut b = KernelBuilder::new("chain");
        let acc = b.mov(1u32);
        for _ in 0..8 {
            b.iadd_to(acc, acc, 1u32);
        }
        let program = b.build().expect("valid").into_shared();
        let threads = warps * 32;
        let fp = crate::kernel::BlockFootprint {
            threads,
            warps,
            registers: threads * u32::from(program.regs_per_thread()),
            shared_mem: 0,
        };
        BlockState::new(
            KernelId(0),
            0,
            BlockDims {
                ctaid: (0, 0, 0),
                ntid: Dim3::x(threads),
                nctaid: Dim3::x(1),
            },
            program,
            Arc::from(vec![].into_boxed_slice()),
            fp,
            0,
            0,
        )
    }

    fn issue_trace(policy: WarpSchedPolicy, steps: usize) -> Vec<(KernelId, u32, usize)> {
        let mut cfg = GpuConfig::tiny_2sm();
        cfg.warp_scheduler = policy;
        cfg.schedulers_per_sm = 1;
        let mut sm = Sm::new(0, &cfg);
        let mut memsys = crate::mem::system::MemorySystem::new(&cfg);
        let mut mem = vec![0u32; 256];
        let mut done = Vec::new();
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        sm.admit(mk_block(4));
        let mut picks = Vec::new();
        let mut now = 0u64;
        for _ in 0..steps {
            sm.issue(
                now,
                &mut mem,
                &mut dirty,
                &mut memsys,
                &mut hook,
                false,
                &mut done,
            );
            if let Some(g) = sm.greedy {
                picks.push(g);
            }
            // Step far enough that every warp is ready again: the policies
            // then differ purely in their selection rule.
            now += 100;
            if sm.is_idle() {
                break;
            }
        }
        picks
    }

    #[test]
    fn gto_sticks_with_one_warp() {
        let picks = issue_trace(WarpSchedPolicy::Gto, 6);
        // With every warp ready at each issue slot, GTO keeps re-issuing
        // the greedy warp until it finishes.
        assert!(picks.len() >= 4);
        assert!(
            picks.windows(2).all(|w| w[0] == w[1]),
            "GTO must re-issue the greedy warp: {picks:?}"
        );
    }

    #[test]
    fn lrr_rotates_across_warps() {
        let picks = issue_trace(WarpSchedPolicy::Lrr, 6);
        assert!(picks.len() >= 4);
        let distinct: std::collections::BTreeSet<usize> =
            picks.iter().map(|&(_, _, wi)| wi).collect();
        assert!(
            distinct.len() >= 3,
            "LRR must rotate over the ready warps: {picks:?}"
        );
        assert!(
            picks.windows(2).all(|w| w[0] != w[1]),
            "LRR never re-issues the same warp while others are ready: {picks:?}"
        );
    }

    #[test]
    fn both_policies_produce_identical_results() {
        // Scheduling order must never change functional outcomes.
        let run = |policy| {
            let mut cfg = GpuConfig::tiny_2sm();
            cfg.warp_scheduler = policy;
            let mut gpu = crate::gpu::Gpu::new(cfg);
            let buf = gpu.alloc_words(128).expect("alloc");
            let mut b = KernelBuilder::new("sum");
            let out = b.param(0);
            let i = b.global_tid_x();
            let a = b.addr_w(out, i);
            let v = b.imul(i, 5u32);
            b.stg(a, 0, v);
            let prog = b.build().expect("valid").into_shared();
            gpu.launch(crate::kernel::KernelLaunch::new(
                prog,
                crate::kernel::LaunchConfig::new(4u32, 32u32).param_u32(buf.0),
            ))
            .expect("launch");
            gpu.run_to_idle().expect("run");
            gpu.read_u32(buf, 128)
        };
        assert_eq!(run(WarpSchedPolicy::Gto), run(WarpSchedPolicy::Lrr));
    }
}
