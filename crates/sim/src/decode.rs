//! Pre-decoded instruction representation.
//!
//! [`crate::exec::step_warp`] used to interpret [`Op`] directly, re-resolving
//! every operand on every *dynamic* instruction: `Src::Reg`/`Src::Imm`
//! dispatch, register-index-to-row-offset multiplies, lane-varying vs
//! warp-uniform special classification. All of that is a pure function of the
//! *static* instruction, so [`decode`] runs it once per program (eagerly, at
//! [`crate::program::Program::new`] time) and the interpreter loop consumes
//! the flattened [`DOp`] stream instead:
//!
//! * `Src::Reg` vs `Src::Imm` becomes distinct opcodes for the 2-source
//!   families (`IAluRR`/`IAluRI`, …) and a pre-split [`DSrc`] for the
//!   3-source ones.
//! * Register operands are stored as precomputed row base offsets
//!   (`reg * 32`) into the `regs[reg * 32 + lane]` file; the register index
//!   is recoverable as `base >> 5` for the uniformity bitmap.
//! * [`SpecialReg`] reads are pre-classified lane-varying vs warp-uniform.
//! * Load/store byte offsets are pre-converted to the wrapping `u32` the
//!   address arithmetic uses.
//!
//! Decoding is semantics-preserving by construction: every [`DOp`] variant
//! corresponds to exactly one [`Op`] shape and carries the same payload,
//! just pre-resolved. The decoded stream is derived state — it is rebuilt,
//! never serialized, and two equal programs decode equally (so `Program`'s
//! derived `PartialEq` stays consistent).

use crate::isa::{CmpOp, ExecUnit, FloatOp, IntOp, Op, SfuOp, Space, SpecialReg, Src};

/// A pre-resolved source operand of a 3-source instruction: a register row
/// base offset or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DSrc {
    /// Register operand, stored as its row base offset (`reg * 32`).
    R(u32),
    /// Immediate operand (raw 32-bit pattern).
    I(u32),
}

/// One decoded instruction. Register fields (`d`, `a`, `v`, `addr`) hold row
/// base offsets (`reg * 32`), not register indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DOp {
    /// `d = reg a`.
    MovR {
        /// Destination row base.
        d: u32,
        /// Source row base.
        a: u32,
    },
    /// `d = imm`.
    MovI {
        /// Destination row base.
        d: u32,
        /// Immediate.
        imm: u32,
    },
    /// Lane-varying special read (`tid.{x,y,z}`, `laneid`).
    SpecialLane {
        /// Destination row base.
        d: u32,
        /// Which hardware value to read.
        s: SpecialReg,
    },
    /// Warp-uniform special read (block/grid geometry, SM id).
    SpecialUniform {
        /// Destination row base.
        d: u32,
        /// Which hardware value to read.
        s: SpecialReg,
    },
    /// `d = params[idx]`.
    Param {
        /// Destination row base.
        d: u32,
        /// Parameter index.
        idx: u8,
    },
    /// Integer binary op, register-register.
    IAluRR {
        /// Operation.
        op: IntOp,
        /// Destination row base.
        d: u32,
        /// First source row base.
        a: u32,
        /// Second source row base.
        b: u32,
    },
    /// Integer binary op, register-immediate.
    IAluRI {
        /// Operation.
        op: IntOp,
        /// Destination row base.
        d: u32,
        /// First source row base.
        a: u32,
        /// Immediate second source.
        imm: u32,
    },
    /// `d = a * b + c`.
    IMad {
        /// Destination row base.
        d: u32,
        /// Multiplicand row base.
        a: u32,
        /// Multiplier.
        b: DSrc,
        /// Addend.
        c: DSrc,
    },
    /// Float binary op, register-register.
    FAluRR {
        /// Operation.
        op: FloatOp,
        /// Destination row base.
        d: u32,
        /// First source row base.
        a: u32,
        /// Second source row base.
        b: u32,
    },
    /// Float binary op, register-immediate.
    FAluRI {
        /// Operation.
        op: FloatOp,
        /// Destination row base.
        d: u32,
        /// First source row base.
        a: u32,
        /// Immediate second source.
        imm: u32,
    },
    /// Fused multiply-add `d = a * b + c`.
    FFma {
        /// Destination row base.
        d: u32,
        /// Multiplicand row base.
        a: u32,
        /// Multiplier.
        b: DSrc,
        /// Addend.
        c: DSrc,
    },
    /// Unary SFU op `d = op(a)`.
    FSfu {
        /// Operation.
        op: SfuOp,
        /// Destination row base.
        d: u32,
        /// Source row base.
        a: u32,
    },
    /// Integer-to-float conversion.
    I2F {
        /// Destination row base.
        d: u32,
        /// Source row base.
        a: u32,
    },
    /// Float-to-integer conversion.
    F2I {
        /// Destination row base.
        d: u32,
        /// Source row base.
        a: u32,
    },
    /// Integer compare, register-register.
    ISetpRR {
        /// Destination predicate.
        p: u8,
        /// Comparison.
        cmp: CmpOp,
        /// First source row base.
        a: u32,
        /// Second source row base.
        b: u32,
        /// Compare as unsigned.
        unsigned: bool,
    },
    /// Integer compare, register-immediate.
    ISetpRI {
        /// Destination predicate.
        p: u8,
        /// Comparison.
        cmp: CmpOp,
        /// First source row base.
        a: u32,
        /// Immediate second source.
        imm: u32,
        /// Compare as unsigned.
        unsigned: bool,
    },
    /// Float compare, register-register.
    FSetpRR {
        /// Destination predicate.
        p: u8,
        /// Comparison.
        cmp: CmpOp,
        /// First source row base.
        a: u32,
        /// Second source row base.
        b: u32,
    },
    /// Float compare, register-immediate.
    FSetpRI {
        /// Destination predicate.
        p: u8,
        /// Comparison.
        cmp: CmpOp,
        /// First source row base.
        a: u32,
        /// Immediate second source.
        imm: u32,
    },
    /// Predicated select `d = p ? a : b`.
    Selp {
        /// Destination row base.
        d: u32,
        /// Value when the predicate is true.
        a: DSrc,
        /// Value when the predicate is false.
        b: DSrc,
        /// Selector predicate.
        p: u8,
    },
    /// Global load `d = global[a + offset]`.
    LdGlobal {
        /// Destination row base.
        d: u32,
        /// Address row base.
        a: u32,
        /// Byte offset (pre-converted to wrapping `u32`).
        offset: u32,
    },
    /// Shared load `d = shared[a + offset]`.
    LdShared {
        /// Destination row base.
        d: u32,
        /// Address row base.
        a: u32,
        /// Byte offset (pre-converted to wrapping `u32`).
        offset: u32,
    },
    /// Global store `global[a + offset] = v`.
    StGlobal {
        /// Address row base.
        a: u32,
        /// Byte offset (pre-converted to wrapping `u32`).
        offset: u32,
        /// Value row base.
        v: u32,
    },
    /// Shared store `shared[a + offset] = v`.
    StShared {
        /// Address row base.
        a: u32,
        /// Byte offset (pre-converted to wrapping `u32`).
        offset: u32,
        /// Value row base.
        v: u32,
    },
    /// Global atomic add (`float` selects f32 vs wrapping-i32 addition);
    /// `d` receives the old value.
    AtomAdd {
        /// Destination row base (old value).
        d: u32,
        /// Address row base.
        a: u32,
        /// Byte offset (pre-converted to wrapping `u32`).
        offset: u32,
        /// Addend row base.
        v: u32,
        /// f32 addition instead of wrapping integer addition.
        float: bool,
    },
    /// Unconditional branch.
    Bra {
        /// Target PC.
        target: u32,
    },
    /// Potentially divergent conditional branch.
    BraCond {
        /// Branch predicate.
        p: u8,
        /// Branch when the predicate is false instead of true.
        negate: bool,
        /// Target PC.
        target: u32,
        /// Reconvergence PC.
        reconv: u32,
    },
    /// Block-wide barrier.
    Bar,
    /// Terminate the executing lanes.
    Exit,
    /// No operation.
    Nop,
}

impl DOp {
    /// The functional unit this instruction issues to (mirrors
    /// [`Op::unit`]; the mapping is fenced by [`tests::decode_preserves_unit`]).
    #[inline]
    pub fn unit(&self) -> ExecUnit {
        match self {
            DOp::LdGlobal { .. } | DOp::StGlobal { .. } | DOp::AtomAdd { .. } => ExecUnit::Mem,
            DOp::LdShared { .. } | DOp::StShared { .. } => ExecUnit::SharedMem,
            DOp::FSfu { .. } => ExecUnit::Sfu,
            DOp::FAluRR {
                op: FloatOp::Div, ..
            }
            | DOp::FAluRI {
                op: FloatOp::Div, ..
            } => ExecUnit::Sfu,
            DOp::Bra { .. } | DOp::BraCond { .. } | DOp::Bar | DOp::Exit | DOp::Nop => {
                ExecUnit::Ctrl
            }
            _ => ExecUnit::Alu,
        }
    }
}

/// Row base offset of a register: the index of lane 0 in the
/// `regs[reg * 32 + lane]` file.
#[inline]
fn rb(r: crate::isa::Reg) -> u32 {
    u32::from(r.0) * 32
}

#[inline]
fn dsrc(s: Src) -> DSrc {
    match s {
        Src::Reg(r) => DSrc::R(rb(r)),
        Src::Imm(v) => DSrc::I(v),
    }
}

/// Decodes one instruction.
pub fn decode_op(op: Op) -> DOp {
    match op {
        Op::Mov { d, a } => match a {
            Src::Reg(r) => DOp::MovR { d: rb(d), a: rb(r) },
            Src::Imm(v) => DOp::MovI { d: rb(d), imm: v },
        },
        Op::Special { d, s } => match s {
            // Lane-varying values need the per-lane decomposition; everything
            // else is identical across the warp and splats.
            SpecialReg::TidX | SpecialReg::TidY | SpecialReg::TidZ | SpecialReg::LaneId => {
                DOp::SpecialLane { d: rb(d), s }
            }
            _ => DOp::SpecialUniform { d: rb(d), s },
        },
        Op::Param { d, idx } => DOp::Param { d: rb(d), idx },
        Op::IAlu { op, d, a, b } => match b {
            Src::Reg(r) => DOp::IAluRR {
                op,
                d: rb(d),
                a: rb(a),
                b: rb(r),
            },
            Src::Imm(v) => DOp::IAluRI {
                op,
                d: rb(d),
                a: rb(a),
                imm: v,
            },
        },
        Op::IMad { d, a, b, c } => DOp::IMad {
            d: rb(d),
            a: rb(a),
            b: dsrc(b),
            c: dsrc(c),
        },
        Op::FAlu { op, d, a, b } => match b {
            Src::Reg(r) => DOp::FAluRR {
                op,
                d: rb(d),
                a: rb(a),
                b: rb(r),
            },
            Src::Imm(v) => DOp::FAluRI {
                op,
                d: rb(d),
                a: rb(a),
                imm: v,
            },
        },
        Op::FFma { d, a, b, c } => DOp::FFma {
            d: rb(d),
            a: rb(a),
            b: dsrc(b),
            c: dsrc(c),
        },
        Op::FSfu { op, d, a } => DOp::FSfu {
            op,
            d: rb(d),
            a: rb(a),
        },
        Op::I2F { d, a } => DOp::I2F { d: rb(d), a: rb(a) },
        Op::F2I { d, a } => DOp::F2I { d: rb(d), a: rb(a) },
        Op::ISetp {
            p,
            cmp,
            a,
            b,
            unsigned,
        } => match b {
            Src::Reg(r) => DOp::ISetpRR {
                p: p.0,
                cmp,
                a: rb(a),
                b: rb(r),
                unsigned,
            },
            Src::Imm(v) => DOp::ISetpRI {
                p: p.0,
                cmp,
                a: rb(a),
                imm: v,
                unsigned,
            },
        },
        Op::FSetp { p, cmp, a, b } => match b {
            Src::Reg(r) => DOp::FSetpRR {
                p: p.0,
                cmp,
                a: rb(a),
                b: rb(r),
            },
            Src::Imm(v) => DOp::FSetpRI {
                p: p.0,
                cmp,
                a: rb(a),
                imm: v,
            },
        },
        Op::Selp { d, a, b, p } => DOp::Selp {
            d: rb(d),
            a: dsrc(a),
            b: dsrc(b),
            p: p.0,
        },
        Op::Ld {
            space,
            d,
            addr,
            offset,
        } => match space {
            Space::Global => DOp::LdGlobal {
                d: rb(d),
                a: rb(addr),
                offset: offset as u32,
            },
            Space::Shared => DOp::LdShared {
                d: rb(d),
                a: rb(addr),
                offset: offset as u32,
            },
        },
        Op::St {
            space,
            addr,
            offset,
            v,
        } => match space {
            Space::Global => DOp::StGlobal {
                a: rb(addr),
                offset: offset as u32,
                v: rb(v),
            },
            Space::Shared => DOp::StShared {
                a: rb(addr),
                offset: offset as u32,
                v: rb(v),
            },
        },
        Op::AtomAdd { d, addr, offset, v } => DOp::AtomAdd {
            d: rb(d),
            a: rb(addr),
            offset: offset as u32,
            v: rb(v),
            float: false,
        },
        Op::AtomAddF { d, addr, offset, v } => DOp::AtomAdd {
            d: rb(d),
            a: rb(addr),
            offset: offset as u32,
            v: rb(v),
            float: true,
        },
        Op::Bra { target } => DOp::Bra { target },
        Op::BraCond {
            p,
            negate,
            target,
            reconv,
        } => DOp::BraCond {
            p: p.0,
            negate,
            target,
            reconv,
        },
        Op::Bar => DOp::Bar,
        Op::Exit => DOp::Exit,
        Op::Nop => DOp::Nop,
    }
}

/// Decodes a whole instruction stream.
pub fn decode(ops: &[Op]) -> Vec<DOp> {
    ops.iter().map(|&op| decode_op(op)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Pred, Reg};

    #[test]
    fn decode_splits_src_variants_and_precomputes_bases() {
        let d = decode_op(Op::IAlu {
            op: IntOp::Add,
            d: Reg(3),
            a: Reg(1),
            b: Src::Imm(7),
        });
        assert_eq!(
            d,
            DOp::IAluRI {
                op: IntOp::Add,
                d: 96,
                a: 32,
                imm: 7
            }
        );
        let d = decode_op(Op::IAlu {
            op: IntOp::Xor,
            d: Reg(0),
            a: Reg(2),
            b: Src::Reg(Reg(4)),
        });
        assert_eq!(
            d,
            DOp::IAluRR {
                op: IntOp::Xor,
                d: 0,
                a: 64,
                b: 128
            }
        );
    }

    #[test]
    fn decode_classifies_specials() {
        let lane = decode_op(Op::Special {
            d: Reg(0),
            s: SpecialReg::TidX,
        });
        assert!(matches!(lane, DOp::SpecialLane { .. }));
        let unif = decode_op(Op::Special {
            d: Reg(0),
            s: SpecialReg::CtaidX,
        });
        assert!(matches!(unif, DOp::SpecialUniform { .. }));
    }

    #[test]
    fn decode_preserves_negative_offsets_as_wrapping_u32() {
        let d = decode_op(Op::Ld {
            space: Space::Global,
            d: Reg(0),
            addr: Reg(1),
            offset: -8,
        });
        assert_eq!(
            d,
            DOp::LdGlobal {
                d: 0,
                a: 32,
                offset: (-8i32) as u32
            }
        );
    }

    #[test]
    fn decode_preserves_unit() {
        // Every shape the `Op::unit` classifier distinguishes.
        let cases = vec![
            Op::Ld {
                space: Space::Global,
                d: Reg(0),
                addr: Reg(1),
                offset: 0,
            },
            Op::Ld {
                space: Space::Shared,
                d: Reg(0),
                addr: Reg(1),
                offset: 0,
            },
            Op::St {
                space: Space::Global,
                addr: Reg(1),
                offset: 0,
                v: Reg(0),
            },
            Op::St {
                space: Space::Shared,
                addr: Reg(1),
                offset: 0,
                v: Reg(0),
            },
            Op::AtomAdd {
                d: Reg(0),
                addr: Reg(1),
                offset: 0,
                v: Reg(2),
            },
            Op::AtomAddF {
                d: Reg(0),
                addr: Reg(1),
                offset: 0,
                v: Reg(2),
            },
            Op::FSfu {
                op: SfuOp::Sqrt,
                d: Reg(0),
                a: Reg(1),
            },
            Op::FAlu {
                op: FloatOp::Div,
                d: Reg(0),
                a: Reg(1),
                b: Src::Imm(0),
            },
            Op::FAlu {
                op: FloatOp::Div,
                d: Reg(0),
                a: Reg(1),
                b: Src::Reg(Reg(2)),
            },
            Op::FAlu {
                op: FloatOp::Add,
                d: Reg(0),
                a: Reg(1),
                b: Src::Imm(0),
            },
            Op::IAlu {
                op: IntOp::Add,
                d: Reg(0),
                a: Reg(1),
                b: Src::Imm(0),
            },
            Op::Mov {
                d: Reg(0),
                a: Src::Imm(0),
            },
            Op::Special {
                d: Reg(0),
                s: SpecialReg::TidX,
            },
            Op::Param { d: Reg(0), idx: 0 },
            Op::Selp {
                d: Reg(0),
                a: Src::Imm(0),
                b: Src::Imm(1),
                p: Pred(0),
            },
            Op::ISetp {
                p: Pred(0),
                cmp: CmpOp::Eq,
                a: Reg(0),
                b: Src::Imm(0),
                unsigned: false,
            },
            Op::Bra { target: 0 },
            Op::BraCond {
                p: Pred(0),
                negate: false,
                target: 0,
                reconv: 1,
            },
            Op::Bar,
            Op::Exit,
            Op::Nop,
        ];
        for op in cases {
            assert_eq!(decode_op(op).unit(), op.unit(), "unit mismatch for {op:?}");
        }
    }
}
