//! Warp state: per-lane registers, predicates and the SIMT divergence stack.

/// An entry of the SIMT reconvergence stack.
///
/// The warp always executes the top entry. Divergent branches retarget the
/// current entry to the reconvergence PC and push one entry per taken path;
/// entries pop when their PC reaches their reconvergence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Active-lane mask for this path.
    pub mask: u32,
    /// Next PC to execute.
    pub pc: u32,
    /// PC at which this entry pops ([`u32::MAX`] for the base entry).
    pub reconv: u32,
}

/// Scheduling state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// May issue once `ready_at` is reached.
    Ready,
    /// Waiting at a block-wide barrier.
    AtBarrier,
    /// All lanes exited.
    Finished,
}

/// One warp of up to 32 threads executing in lockstep.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within its block.
    pub warp_idx: usize,
    /// Register file, laid out `regs[reg * 32 + lane]`.
    pub regs: Vec<u32>,
    /// Predicate registers, one 32-bit lane mask per predicate.
    pub preds: [u32; 8],
    /// SIMT divergence stack (never empty while running).
    pub stack: Vec<StackEntry>,
    /// Lanes that have not executed `exit` (subset of the initial mask).
    pub live: u32,
    /// Earliest cycle the warp may issue its next instruction.
    pub ready_at: u64,
    /// Scheduling state.
    pub state: WarpState,
    /// Dynamic instruction count (for statistics).
    pub instrs: u64,
    /// Uniformity bitmap: bit `r` set means register `r` is *known* to hold
    /// the same value in all 32 lanes (registers ≥ 64 are never tracked).
    /// Purely an acceleration overlay over the materialized register file —
    /// the interpreter may compute uniform operations once and splat — so
    /// the only invariant is soundness: a set bit implies the 32 lanes are
    /// bit-identical; a clear bit implies nothing. Travels with the warp
    /// through `Clone` (device snapshots) like every other derived field.
    pub uniform: u64,
}

impl Warp {
    /// Creates a warp with `active` initial lanes and `nregs` registers per
    /// lane, ready at `ready_at`.
    pub fn new(warp_idx: usize, active: u32, nregs: u16, ready_at: u64) -> Self {
        Self {
            warp_idx,
            regs: vec![0u32; usize::from(nregs) * 32],
            preds: [0; 8],
            stack: {
                // Preallocate typical divergence depth so the interpreter
                // hot path never grows the stack (each divergence pushes two
                // entries); deeper nesting still works, it just reallocates.
                let mut stack = Vec::with_capacity(16);
                stack.push(StackEntry {
                    mask: active,
                    pc: 0,
                    reconv: u32::MAX,
                });
                stack
            },
            live: active,
            ready_at,
            state: WarpState::Ready,
            instrs: 0,
            // Freshly allocated registers are all zero, hence uniform.
            uniform: if nregs >= 64 {
                u64::MAX
            } else {
                (1u64 << nregs) - 1
            },
        }
    }

    /// True when the warp can issue an instruction at cycle `now`: it is
    /// [`WarpState::Ready`] and its pending latency has elapsed. This is
    /// *the* predicate of the warp schedulers — the per-block ready masks
    /// and the SM's cached `next_ready_at` are both defined in terms of it.
    #[inline]
    pub fn is_issuable(&self, now: u64) -> bool {
        self.state == WarpState::Ready && self.ready_at <= now
    }

    /// The initial active mask for a warp covering threads
    /// `[warp_idx*32, warp_idx*32+32)` of a block with `block_threads`
    /// threads.
    pub fn initial_mask(warp_idx: usize, block_threads: u32) -> u32 {
        let begin = (warp_idx * 32) as u32;
        if block_threads <= begin {
            0
        } else {
            let lanes = (block_threads - begin).min(32);
            if lanes == 32 {
                u32::MAX
            } else {
                (1u32 << lanes) - 1
            }
        }
    }

    /// Current active mask: lanes of the top stack entry that are still live.
    pub fn active_mask(&self) -> u32 {
        self.stack.last().map_or(0, |e| e.mask) & self.live
    }

    /// Pops reconverged or emptied entries. Returns `false` when the warp has
    /// fully finished (no live lanes or empty stack).
    pub fn settle(&mut self) -> bool {
        loop {
            let Some(top) = self.stack.last() else {
                return false;
            };
            let reconverged = top.pc == top.reconv;
            let empty = top.mask & self.live == 0;
            if (reconverged || empty) && self.stack.len() > 1 {
                self.stack.pop();
            } else {
                return !empty;
            }
        }
    }

    /// Removes `mask` lanes from every stack entry (exit semantics).
    pub fn retire_lanes(&mut self, mask: u32) {
        self.live &= !mask;
        for e in &mut self.stack {
            e.mask &= !mask;
        }
    }

    /// Reads register `r` of `lane`.
    #[inline]
    pub fn reg(&self, r: u16, lane: usize) -> u32 {
        self.regs[usize::from(r) * 32 + lane]
    }

    /// Writes register `r` of `lane`. Conservatively clears the uniformity
    /// bit: a single-lane write may break the all-lanes-identical invariant.
    #[inline]
    pub fn set_reg(&mut self, r: u16, lane: usize, v: u32) {
        self.regs[usize::from(r) * 32 + lane] = v;
        self.clear_uniform(r);
    }

    /// True when register `r` is tracked as warp-uniform (see [`Warp::uniform`]).
    #[inline]
    pub fn is_uniform(&self, r: u16) -> bool {
        r < 64 && self.uniform & (1u64 << r) != 0
    }

    /// Marks register `r` as warp-uniform. The caller guarantees all 32
    /// lanes of `r` hold the same value.
    #[inline]
    pub fn mark_uniform(&mut self, r: u16) {
        if r < 64 {
            self.uniform |= 1u64 << r;
        }
    }

    /// Drops the uniformity claim for register `r` (always sound).
    #[inline]
    pub fn clear_uniform(&mut self, r: u16) {
        if r < 64 {
            self.uniform &= !(1u64 << r);
        }
    }

    /// Reads predicate `p` of `lane`.
    #[inline]
    pub fn pred(&self, p: u8, lane: usize) -> bool {
        self.preds[usize::from(p)] & (1 << lane) != 0
    }

    /// Writes predicate `p` of `lane`.
    #[inline]
    pub fn set_pred(&mut self, p: u8, lane: usize, v: bool) {
        if v {
            self.preds[usize::from(p)] |= 1 << lane;
        } else {
            self.preds[usize::from(p)] &= !(1 << lane);
        }
    }

    /// The mask of lanes (within `of`) whose predicate `p`, xor `negate`,
    /// holds.
    pub fn pred_mask(&self, p: u8, negate: bool, of: u32) -> u32 {
        let raw = self.preds[usize::from(p)];
        let m = if negate { !raw } else { raw };
        m & of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mask_handles_partial_warps() {
        assert_eq!(Warp::initial_mask(0, 64), u32::MAX);
        assert_eq!(Warp::initial_mask(1, 64), u32::MAX);
        assert_eq!(Warp::initial_mask(0, 5), 0b11111);
        assert_eq!(Warp::initial_mask(1, 33), 0b1);
        assert_eq!(Warp::initial_mask(2, 64), 0);
        assert_eq!(Warp::initial_mask(0, 32), u32::MAX);
    }

    #[test]
    fn settle_pops_reconverged_entries() {
        let mut w = Warp::new(0, u32::MAX, 4, 0);
        w.stack.push(StackEntry {
            mask: 0xff,
            pc: 10,
            reconv: 10,
        });
        assert!(w.settle());
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.active_mask(), u32::MAX);
    }

    #[test]
    fn settle_reports_finished_when_all_lanes_exit() {
        let mut w = Warp::new(0, 0b1111, 4, 0);
        w.retire_lanes(0b1111);
        assert!(!w.settle());
    }

    #[test]
    fn retire_lanes_scrubs_all_entries() {
        let mut w = Warp::new(0, u32::MAX, 4, 0);
        w.stack.push(StackEntry {
            mask: 0xf0,
            pc: 5,
            reconv: 20,
        });
        w.retire_lanes(0x30);
        assert_eq!(w.stack[0].mask, !0x30);
        assert_eq!(w.stack[1].mask, 0xc0);
        assert_eq!(w.live, !0x30);
    }

    #[test]
    fn register_and_predicate_accessors() {
        let mut w = Warp::new(0, u32::MAX, 8, 0);
        w.set_reg(3, 7, 42);
        assert_eq!(w.reg(3, 7), 42);
        assert_eq!(w.reg(3, 6), 0);
        w.set_pred(2, 5, true);
        assert!(w.pred(2, 5));
        w.set_pred(2, 5, false);
        assert!(!w.pred(2, 5));
    }

    #[test]
    fn uniformity_bitmap_starts_full_and_clears_on_lane_writes() {
        let mut w = Warp::new(0, u32::MAX, 8, 0);
        assert!(w.is_uniform(3), "zeroed registers start uniform");
        w.set_reg(3, 7, 42);
        assert!(!w.is_uniform(3), "a lane write drops the claim");
        for lane in 0..32 {
            w.set_reg(3, lane, 42);
        }
        w.mark_uniform(3);
        assert!(w.is_uniform(3));

        // Registers beyond the 64-bit map are never tracked.
        let big = Warp::new(0, u32::MAX, 80, 0);
        assert!(big.is_uniform(63));
        assert!(!big.is_uniform(64));
        assert!(!big.is_uniform(79));
    }

    #[test]
    fn pred_mask_applies_negation_and_scope() {
        let mut w = Warp::new(0, u32::MAX, 1, 0);
        for lane in 0..8 {
            w.set_pred(0, lane, lane % 2 == 0);
        }
        assert_eq!(w.pred_mask(0, false, 0xff), 0b01010101);
        assert_eq!(w.pred_mask(0, true, 0xff), 0b10101010);
        assert_eq!(w.pred_mask(0, false, 0x0f), 0b0101);
    }
}
