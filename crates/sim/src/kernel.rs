//! Kernel launch descriptors: grid/block geometry, parameters and the
//! scheduling attributes consumed by global kernel-scheduler policies.

use crate::partition::SmRange;
use crate::program::Program;
use std::sync::Arc;

/// A three-component dimension (grid or block shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// x extent.
    pub x: u32,
    /// y extent.
    pub y: u32,
    /// z extent.
    pub z: u32,
}

impl Dim3 {
    /// One-dimensional shape `(x, 1, 1)`.
    pub fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// Two-dimensional shape `(x, y, 1)`.
    pub fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// Total element count `x * y * z`.
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }

    /// Decomposes a linear index into `(x, y, z)` coordinates.
    pub fn coords(&self, linear: u32) -> (u32, u32, u32) {
        // 1-D blocks (the common case) need no division: callers hit this
        // once per lane on every `%tid` read.
        if self.y == 1 && self.z == 1 {
            return (linear, 0, 0);
        }
        let x = linear % self.x;
        let y = (linear / self.x) % self.y;
        let z = linear / (self.x * self.y);
        (x, y, z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3 { x, y, z }
    }
}

/// Identifier of a kernel launch (unique per [`crate::gpu::Gpu`] instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u64);

/// Identifier of a redundant-execution group: all replicas of one logical
/// computation share the `group`, distinguished by `replica`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RedundantTag {
    /// Logical computation identifier.
    pub group: u32,
    /// Replica index (0 for the primary copy, 1 for the redundant copy, ...).
    pub replica: u8,
}

/// Scheduling attributes attached to a launch, consumed by global
/// kernel-scheduler policies. Policies ignore the hints they do not use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchAttrs {
    /// Human-readable tag recorded in traces.
    pub tag: String,
    /// Redundant-execution group membership, if any.
    pub redundant: Option<RedundantTag>,
    /// SRRS hint: SM that receives the first thread block.
    pub start_sm: Option<usize>,
    /// HALF hint: which SM partition this kernel is confined to.
    pub partition: Option<SmPartition>,
    /// SLICE hint: which of N balanced SM slices this kernel is confined to
    /// (the N-replica generalization of `partition`).
    pub slice: Option<SmSlice>,
    /// SRRS hint: kernels sharing a serialization group are executed one at
    /// a time, on an otherwise idle GPU.
    pub serialize_group: Option<u32>,
    /// Partition reservation: the kernel is confined to this contiguous SM
    /// range (a frame executor's branch partition). Composes with the
    /// diversity hints above — a `slice` is taken *of the reserve* (see
    /// [`SmSlice::range_in`]), a `start_sm` round-robins *within* it, and a
    /// `serialize_group` serializes against the reserve only — so one
    /// frame's independent branches overlap on disjoint partitions while
    /// each branch keeps its replica-diversity placement.
    pub reserve: Option<SmRange>,
    /// Extra cycles added to this launch's arrival before it becomes
    /// visible to the scheduler (on top of the serial CPU dispatch gap).
    /// Diversity-enforcing hosts use this to stagger concurrent replicas by
    /// more than the worst-case common-cause-fault duration (droop-aware
    /// start skew), so a droop can never strike the same computation point
    /// in two replicas at once.
    pub dispatch_delay: u64,
}

/// One of N equal SM slices used by the SLICE policy (the N-replica
/// generalization of [`SmPartition`]): slice `index` of `of` owns the SM
/// range `[index·n/of, (index+1)·n/of)`.
///
/// [`SmPartition`] is kept as a distinct two-way type because HALF's
/// odd-SM-count convention differs (the *lower* half receives the extra SM,
/// whereas balanced slicing gives later slices the larger share) and the
/// paper's HALF evaluation depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmSlice {
    /// Slice index, `0..of`.
    pub index: u8,
    /// Total number of slices.
    pub of: u8,
}

impl SmSlice {
    /// The SM-id range of this slice on a GPU with `num_sms` SMs
    /// (balanced partition: `[index·n/of, (index+1)·n/of)`).
    pub fn range(self, num_sms: usize) -> std::ops::Range<usize> {
        let of = usize::from(self.of).max(1);
        let i = usize::from(self.index);
        (i * num_sms / of)..((i + 1) * num_sms / of)
    }

    /// True if `sm` belongs to this slice.
    pub fn contains(self, sm: usize, num_sms: usize) -> bool {
        self.range(num_sms).contains(&sm)
    }

    /// The SM-id range of this slice *within a reserved partition*: the
    /// balanced sub-slice of `reserve`'s SMs, offset to absolute ids. This
    /// is how a frame executor composes replica diversity (disjoint slices)
    /// with branch isolation (disjoint partitions).
    pub fn range_in(self, reserve: SmRange) -> std::ops::Range<usize> {
        let r = self.range(reserve.len);
        reserve.start + r.start..reserve.start + r.end
    }
}

/// One of the two SM partitions used by the HALF policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmPartition {
    /// SMs `[0, n/2)`.
    Lower,
    /// SMs `[n/2, n)`.
    Upper,
}

impl SmPartition {
    /// The SM-id range of this partition on a GPU with `num_sms` SMs.
    ///
    /// For odd SM counts the lower partition receives the extra SM.
    pub fn range(self, num_sms: usize) -> std::ops::Range<usize> {
        let half = num_sms.div_ceil(2);
        match self {
            SmPartition::Lower => 0..half,
            SmPartition::Upper => half..num_sms,
        }
    }

    /// True if `sm` belongs to this partition.
    pub fn contains(self, sm: usize, num_sms: usize) -> bool {
        self.range(num_sms).contains(&sm)
    }

    /// The opposite partition.
    pub fn other(self) -> Self {
        match self {
            SmPartition::Lower => SmPartition::Upper,
            SmPartition::Upper => SmPartition::Lower,
        }
    }
}

/// Everything needed to launch a kernel: program, geometry, parameters and
/// per-block shared-memory footprint.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Grid shape in thread blocks.
    pub grid: Dim3,
    /// Block shape in threads.
    pub block: Dim3,
    /// Shared memory bytes per block.
    pub shared_mem_bytes: u32,
    /// Kernel parameter words (buffer addresses, scalars, f32 bit patterns).
    pub params: Vec<u32>,
}

impl LaunchConfig {
    /// Creates a launch configuration with the given grid/block geometry and
    /// no parameters.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        Self {
            grid: grid.into(),
            block: block.into(),
            shared_mem_bytes: 0,
            params: Vec::new(),
        }
    }

    /// Sets the per-block shared memory footprint.
    pub fn shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Appends a raw parameter word.
    pub fn param_u32(mut self, v: u32) -> Self {
        self.params.push(v);
        self
    }

    /// Appends an `i32` parameter word.
    pub fn param_i32(mut self, v: i32) -> Self {
        self.params.push(v as u32);
        self
    }

    /// Appends an `f32` parameter word (raw bits).
    pub fn param_f32(mut self, v: f32) -> Self {
        self.params.push(v.to_bits());
        self
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        (self.block.count()).min(u64::from(u32::MAX)) as u32
    }

    /// Thread blocks in the grid.
    pub fn num_blocks(&self) -> u32 {
        (self.grid.count()).min(u64::from(u32::MAX)) as u32
    }
}

/// A fully-specified kernel ready for [`crate::gpu::Gpu::launch`].
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// The program to execute.
    pub program: Arc<Program>,
    /// Geometry and parameters.
    pub config: LaunchConfig,
    /// Scheduling attributes.
    pub attrs: LaunchAttrs,
}

impl KernelLaunch {
    /// Convenience constructor with default attributes.
    pub fn new(program: Arc<Program>, config: LaunchConfig) -> Self {
        Self {
            program,
            config,
            attrs: LaunchAttrs::default(),
        }
    }

    /// Sets the trace tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.attrs.tag = tag.into();
        self
    }

    /// Marks this launch as replica `replica` of redundant group `group`.
    pub fn redundant(mut self, group: u32, replica: u8) -> Self {
        self.attrs.redundant = Some(RedundantTag { group, replica });
        self
    }

    /// SRRS hint: the SM receiving the first thread block.
    pub fn start_sm(mut self, sm: usize) -> Self {
        self.attrs.start_sm = Some(sm);
        self
    }

    /// HALF hint: the SM partition for this kernel.
    pub fn partition(mut self, p: SmPartition) -> Self {
        self.attrs.partition = Some(p);
        self
    }

    /// SLICE hint: confines this kernel to slice `index` of `of` balanced
    /// SM slices.
    pub fn slice(mut self, index: u8, of: u8) -> Self {
        self.attrs.slice = Some(SmSlice { index, of });
        self
    }

    /// SRRS hint: serialization group.
    pub fn serialize_group(mut self, g: u32) -> Self {
        self.attrs.serialize_group = Some(g);
        self
    }

    /// Confines this launch to a reserved SM partition (see
    /// [`LaunchAttrs::reserve`]).
    pub fn reserve(mut self, range: SmRange) -> Self {
        self.attrs.reserve = Some(range);
        self
    }

    /// Delays this launch's scheduler arrival by `cycles` beyond the serial
    /// dispatch gap (droop-aware start skew; see
    /// [`LaunchAttrs::dispatch_delay`]).
    pub fn dispatch_delay(mut self, cycles: u64) -> Self {
        self.attrs.dispatch_delay = cycles;
        self
    }
}

/// Per-block resource footprint, used for occupancy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockFootprint {
    /// Threads per block.
    pub threads: u32,
    /// Warps per block (threads rounded up to warp granularity).
    pub warps: u32,
    /// Registers per block (threads × regs-per-thread).
    pub registers: u32,
    /// Shared memory bytes per block.
    pub shared_mem: u32,
}

impl BlockFootprint {
    /// Computes the footprint of one block of `launch` on hardware with the
    /// given warp size.
    pub fn of(launch: &KernelLaunch, warp_size: usize) -> Self {
        let threads = launch.config.threads_per_block();
        let warps = threads.div_ceil(warp_size as u32);
        let registers = threads * u32::from(launch.program.regs_per_thread());
        BlockFootprint {
            threads,
            warps,
            registers,
            shared_mem: launch.config.shared_mem_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn prog() -> Arc<Program> {
        let mut b = KernelBuilder::new("t");
        let _ = b.mov(0u32);
        b.build().expect("valid").into_shared()
    }

    #[test]
    fn dim3_coords_roundtrip() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        assert_eq!(d.count(), 24);
        assert_eq!(d.coords(0), (0, 0, 0));
        assert_eq!(d.coords(5), (1, 1, 0));
        assert_eq!(d.coords(23), (3, 2, 1));
    }

    #[test]
    fn partition_ranges_cover_all_sms() {
        for n in 1..=8 {
            let lo = SmPartition::Lower.range(n);
            let hi = SmPartition::Upper.range(n);
            assert_eq!(lo.end, hi.start);
            assert_eq!(hi.end, n);
            for sm in 0..n {
                assert_ne!(
                    SmPartition::Lower.contains(sm, n),
                    SmPartition::Upper.contains(sm, n),
                    "partitions are disjoint and exhaustive"
                );
            }
        }
        assert_eq!(SmPartition::Lower.range(6), 0..3);
        assert_eq!(SmPartition::Upper.range(6), 3..6);
        assert_eq!(SmPartition::Lower.other(), SmPartition::Upper);
    }

    #[test]
    fn slice_ranges_cover_all_sms_disjointly() {
        for n in 1..=12usize {
            for of in 1..=n.min(6) as u8 {
                let mut covered = vec![0u32; n];
                let mut prev_end = 0;
                for index in 0..of {
                    let r = SmSlice { index, of }.range(n);
                    assert_eq!(r.start, prev_end, "slices are contiguous");
                    prev_end = r.end;
                    for sm in r {
                        covered[sm] += 1;
                    }
                }
                assert_eq!(prev_end, n, "last slice ends at n");
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "n={n} of={of}: every SM in exactly one slice: {covered:?}"
                );
            }
        }
        // 6 SMs in 3 slices: 2 SMs each.
        assert_eq!(SmSlice { index: 0, of: 3 }.range(6), 0..2);
        assert_eq!(SmSlice { index: 1, of: 3 }.range(6), 2..4);
        assert_eq!(SmSlice { index: 2, of: 3 }.range(6), 4..6);
        assert!(SmSlice { index: 2, of: 3 }.contains(5, 6));
        assert!(!SmSlice { index: 2, of: 3 }.contains(3, 6));
    }

    #[test]
    fn slices_within_a_reserve_cover_it_disjointly() {
        // A 3-SM partition starting at SM 2, cut in 2 sub-slices: [2,3) and
        // [3,5) (later slices get the larger share, as with global slicing).
        let reserve = SmRange { start: 2, len: 3 };
        assert_eq!(SmSlice { index: 0, of: 2 }.range_in(reserve), 2..3);
        assert_eq!(SmSlice { index: 1, of: 2 }.range_in(reserve), 3..5);
        // Sub-slices always tile the reserve exactly.
        for len in 1..=8usize {
            for of in 1..=len.min(4) as u8 {
                let reserve = SmRange { start: 1, len };
                let mut prev_end = reserve.start;
                for index in 0..of {
                    let r = SmSlice { index, of }.range_in(reserve);
                    assert_eq!(r.start, prev_end, "len={len} of={of}");
                    prev_end = r.end;
                }
                assert_eq!(prev_end, reserve.start + reserve.len);
            }
        }
    }

    #[test]
    fn launch_config_params() {
        let c = LaunchConfig::new(4u32, 64u32)
            .param_u32(10)
            .param_f32(1.5)
            .param_i32(-2);
        assert_eq!(c.params.len(), 3);
        assert_eq!(c.params[1], 1.5f32.to_bits());
        assert_eq!(c.params[2] as i32, -2);
        assert_eq!(c.num_blocks(), 4);
        assert_eq!(c.threads_per_block(), 64);
    }

    #[test]
    fn footprint_rounds_warps_up() {
        let l = KernelLaunch::new(prog(), LaunchConfig::new(1u32, 33u32).shared_mem(256));
        let fp = BlockFootprint::of(&l, 32);
        assert_eq!(fp.warps, 2);
        assert_eq!(fp.threads, 33);
        assert_eq!(fp.shared_mem, 256);
        assert_eq!(fp.registers, 33 * u32::from(l.program.regs_per_thread()));
    }

    #[test]
    fn launch_builder_attrs() {
        let l = KernelLaunch::new(prog(), LaunchConfig::new(1u32, 32u32))
            .tag("k0")
            .redundant(7, 1)
            .start_sm(3)
            .partition(SmPartition::Upper)
            .slice(1, 3)
            .serialize_group(9)
            .reserve(SmRange { start: 2, len: 2 })
            .dispatch_delay(501);
        assert_eq!(l.attrs.tag, "k0");
        assert_eq!(l.attrs.reserve, Some(SmRange { start: 2, len: 2 }));
        assert_eq!(l.attrs.dispatch_delay, 501);
        assert_eq!(
            l.attrs.redundant,
            Some(RedundantTag {
                group: 7,
                replica: 1
            })
        );
        assert_eq!(l.attrs.start_sm, Some(3));
        assert_eq!(l.attrs.partition, Some(SmPartition::Upper));
        assert_eq!(l.attrs.slice, Some(SmSlice { index: 1, of: 3 }));
        assert_eq!(l.attrs.serialize_group, Some(9));
    }
}
