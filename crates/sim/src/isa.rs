//! The SASS-like instruction set executed by the simulator.
//!
//! Registers are 32 bits wide; floating point operations interpret register
//! contents as IEEE-754 `f32` bit patterns, integer operations as `i32`/`u32`.
//! Control flow uses explicit divergent branches that carry their
//! reconvergence PC, produced by the structured [`crate::builder::KernelBuilder`].

use std::fmt;

/// A general-purpose 32-bit register identifier (`r0`..`r{N-1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A 1-bit predicate register identifier (`p0`..`p7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pred(pub u8);

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Second source operand: either a register or a 32-bit immediate.
///
/// Float immediates are encoded via [`Src::f32imm`] as raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand (raw 32-bit pattern).
    Imm(u32),
}

impl Src {
    /// Builds an immediate operand carrying the bit pattern of `v`.
    pub fn f32imm(v: f32) -> Self {
        Src::Imm(v.to_bits())
    }

    /// Builds an immediate operand from a signed integer.
    pub fn i32imm(v: i32) -> Self {
        Src::Imm(v as u32)
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::Reg(r)
    }
}

impl From<u32> for Src {
    fn from(v: u32) -> Self {
        Src::Imm(v)
    }
}

impl From<i32> for Src {
    fn from(v: i32) -> Self {
        Src::Imm(v as u32)
    }
}

impl From<f32> for Src {
    fn from(v: f32) -> Self {
        Src::f32imm(v)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "0x{v:x}"),
        }
    }
}

/// Hardware-provided per-thread values readable via [`Op::Special`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block, x component.
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Thread index within the block, z component.
    TidZ,
    /// Block index within the grid, x component.
    CtaidX,
    /// Block index within the grid, y component.
    CtaidY,
    /// Block index within the grid, z component.
    CtaidZ,
    /// Block dimension, x component.
    NtidX,
    /// Block dimension, y component.
    NtidY,
    /// Block dimension, z component.
    NtidZ,
    /// Grid dimension, x component.
    NctaidX,
    /// Grid dimension, y component.
    NctaidY,
    /// Grid dimension, z component.
    NctaidZ,
    /// Lane index within the warp.
    LaneId,
    /// Identifier of the SM executing the block (diagnostic; used by the
    /// scheduler built-in self-test).
    SmId,
}

/// Comparison operator for `setp` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the comparison over signed 32-bit integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Applies the comparison over unsigned 32-bit integers.
    pub fn eval_u32(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Applies the comparison over `f32` (IEEE semantics; comparisons with
    /// NaN are false except `Ne`).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Binary integer ALU operations (`d = a <op> b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division (division by zero yields 0, like CUDA's undefined
    /// result made deterministic).
    Div,
    /// Signed remainder (remainder by zero yields 0).
    Rem,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 0..=31).
    Shl,
    /// Logical shift right (shift amount masked to 0..=31).
    Shr,
    /// Arithmetic shift right (shift amount masked to 0..=31).
    Sra,
}

/// Binary floating-point ALU operations (`d = a <op> b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (SFU-class latency).
    Div,
    /// Minimum (NaN-propagating like `f32::min` of the reference CPU code).
    Min,
    /// Maximum.
    Max,
}

/// Unary floating-point operations executed on the special function unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Reciprocal.
    Rcp,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Absolute value (cheap, but grouped here for encoding simplicity).
    Abs,
    /// Negation.
    Neg,
    /// Round toward negative infinity.
    Floor,
}

/// Memory space addressed by a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device global memory (byte addresses into the GPU memory).
    Global,
    /// Per-block shared memory (byte offsets into the block's allocation).
    Shared,
}

/// One instruction of the kernel ISA.
///
/// `d` is always the destination, `a` the first source register, `b`/`c`
/// further sources. All arithmetic is per active lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `d = src`.
    Mov {
        /// Destination.
        d: Reg,
        /// Source operand.
        a: Src,
    },
    /// `d = special`.
    Special {
        /// Destination.
        d: Reg,
        /// Which hardware value to read.
        s: SpecialReg,
    },
    /// `d = params[idx]` (kernel parameter word).
    Param {
        /// Destination.
        d: Reg,
        /// Parameter index.
        idx: u8,
    },
    /// Integer binary operation `d = a <op> b`.
    IAlu {
        /// Operation.
        op: IntOp,
        /// Destination.
        d: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Src,
    },
    /// Integer multiply-add `d = a * b + c`.
    IMad {
        /// Destination.
        d: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier.
        b: Src,
        /// Addend.
        c: Src,
    },
    /// Float binary operation `d = a <op> b`.
    FAlu {
        /// Operation.
        op: FloatOp,
        /// Destination.
        d: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Src,
    },
    /// Fused multiply-add `d = a * b + c`.
    FFma {
        /// Destination.
        d: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier.
        b: Src,
        /// Addend.
        c: Src,
    },
    /// Unary SFU operation `d = op(a)`.
    FSfu {
        /// Operation.
        op: SfuOp,
        /// Destination.
        d: Reg,
        /// Source.
        a: Reg,
    },
    /// Integer-to-float conversion `d = (f32)(i32)a`.
    I2F {
        /// Destination.
        d: Reg,
        /// Source.
        a: Reg,
    },
    /// Float-to-integer conversion `d = (i32)(f32)a` (truncating).
    F2I {
        /// Destination.
        d: Reg,
        /// Source.
        a: Reg,
    },
    /// Integer compare and set predicate `p = a <cmp> b`.
    ISetp {
        /// Destination predicate.
        p: Pred,
        /// Comparison.
        cmp: CmpOp,
        /// First source.
        a: Reg,
        /// Second source.
        b: Src,
        /// Compare as unsigned instead of signed.
        unsigned: bool,
    },
    /// Float compare and set predicate `p = a <cmp> b`.
    FSetp {
        /// Destination predicate.
        p: Pred,
        /// Comparison.
        cmp: CmpOp,
        /// First source.
        a: Reg,
        /// Second source.
        b: Src,
    },
    /// Predicated select `d = p ? a : b`.
    Selp {
        /// Destination.
        d: Reg,
        /// Value when predicate is true.
        a: Src,
        /// Value when predicate is false.
        b: Src,
        /// Selector predicate.
        p: Pred,
    },
    /// Load a 32-bit word: `d = mem[a + offset]`.
    Ld {
        /// Memory space.
        space: Space,
        /// Destination.
        d: Reg,
        /// Address register (byte address).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// Store a 32-bit word: `mem[addr + offset] = v`.
    St {
        /// Memory space.
        space: Space,
        /// Address register (byte address).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Value register.
        v: Reg,
    },
    /// Global-memory atomic add of a 32-bit integer; `d` receives the old
    /// value.
    AtomAdd {
        /// Destination (old value).
        d: Reg,
        /// Address register (byte address, global space).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Addend register.
        v: Reg,
    },
    /// Global-memory atomic add of an `f32`; `d` receives the old value.
    AtomAddF {
        /// Destination (old value).
        d: Reg,
        /// Address register (byte address, global space).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Addend register.
        v: Reg,
    },
    /// Unconditional branch (uniform within the executing stack entry).
    Bra {
        /// Target PC.
        target: u32,
    },
    /// Potentially divergent conditional branch.
    ///
    /// Lanes where the predicate (possibly negated) holds jump to `target`;
    /// the rest fall through. `reconv` is the immediate post-dominator where
    /// both paths reconverge, computed by the builder.
    BraCond {
        /// Branch predicate.
        p: Pred,
        /// Branch when predicate is *false* instead of true.
        negate: bool,
        /// Target PC.
        target: u32,
        /// Reconvergence PC.
        reconv: u32,
    },
    /// Block-wide barrier (`__syncthreads()`); must be executed by all
    /// non-exited threads of the block.
    Bar,
    /// Terminate the executing lanes.
    Exit,
    /// No operation.
    Nop,
}

/// Functional unit classes used for issue/latency modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Integer / simple float pipelines.
    Alu,
    /// Special function unit.
    Sfu,
    /// Load/store unit (global).
    Mem,
    /// Load/store unit (shared memory).
    SharedMem,
    /// Control flow (branch, barrier, exit).
    Ctrl,
}

impl Op {
    /// The functional unit this instruction issues to.
    pub fn unit(&self) -> ExecUnit {
        match self {
            Op::Ld { space, .. } | Op::St { space, .. } => match space {
                Space::Global => ExecUnit::Mem,
                Space::Shared => ExecUnit::SharedMem,
            },
            Op::AtomAdd { .. } | Op::AtomAddF { .. } => ExecUnit::Mem,
            Op::FSfu { .. } => ExecUnit::Sfu,
            Op::FAlu {
                op: FloatOp::Div, ..
            } => ExecUnit::Sfu,
            Op::Bra { .. } | Op::BraCond { .. } | Op::Bar | Op::Exit | Op::Nop => ExecUnit::Ctrl,
            _ => ExecUnit::Alu,
        }
    }

    /// True for instructions that can change control flow or lane liveness.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Bra { .. } | Op::BraCond { .. } | Op::Exit | Op::Bar
        )
    }

    /// The destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Op::Mov { d, .. }
            | Op::Special { d, .. }
            | Op::Param { d, .. }
            | Op::IAlu { d, .. }
            | Op::IMad { d, .. }
            | Op::FAlu { d, .. }
            | Op::FFma { d, .. }
            | Op::FSfu { d, .. }
            | Op::I2F { d, .. }
            | Op::F2I { d, .. }
            | Op::Selp { d, .. }
            | Op::Ld { d, .. }
            | Op::AtomAdd { d, .. }
            | Op::AtomAddF { d, .. } => Some(d),
            _ => None,
        }
    }

    /// Highest register index referenced by this instruction, if any.
    pub fn max_reg(&self) -> Option<u16> {
        fn bump(m: &mut Option<u16>, r: Reg) {
            *m = Some(m.map_or(r.0, |cur| cur.max(r.0)));
        }
        fn bump_src(m: &mut Option<u16>, s: Src) {
            if let Src::Reg(r) = s {
                bump(m, r);
            }
        }
        let mut m: Option<u16> = None;
        match *self {
            Op::Mov { d, a } => {
                bump(&mut m, d);
                bump_src(&mut m, a);
            }
            Op::Special { d, .. } | Op::Param { d, .. } => bump(&mut m, d),
            Op::IAlu { d, a, b, .. } | Op::FAlu { d, a, b, .. } => {
                bump(&mut m, d);
                bump(&mut m, a);
                bump_src(&mut m, b);
            }
            Op::IMad { d, a, b, c } | Op::FFma { d, a, b, c } => {
                bump(&mut m, d);
                bump(&mut m, a);
                bump_src(&mut m, b);
                bump_src(&mut m, c);
            }
            Op::FSfu { d, a, .. } | Op::I2F { d, a } | Op::F2I { d, a } => {
                bump(&mut m, d);
                bump(&mut m, a);
            }
            Op::ISetp { a, b, .. } | Op::FSetp { a, b, .. } => {
                bump(&mut m, a);
                bump_src(&mut m, b);
            }
            Op::Selp { d, a, b, .. } => {
                bump(&mut m, d);
                bump_src(&mut m, a);
                bump_src(&mut m, b);
            }
            Op::Ld { d, addr, .. } => {
                bump(&mut m, d);
                bump(&mut m, addr);
            }
            Op::St { addr, v, .. } => {
                bump(&mut m, addr);
                bump(&mut m, v);
            }
            Op::AtomAdd { d, addr, v, .. } | Op::AtomAddF { d, addr, v, .. } => {
                bump(&mut m, d);
                bump(&mut m, addr);
                bump(&mut m, v);
            }
            Op::Bra { .. } | Op::BraCond { .. } | Op::Bar | Op::Exit | Op::Nop => {}
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_cover_integer_orderings() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(!CmpOp::Lt.eval_u32((-1i32) as u32, 0));
        assert!(CmpOp::Ge.eval_i32(5, 5));
        assert!(CmpOp::Ne.eval_f32(1.0, 2.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
        assert!(CmpOp::Ne.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    fn src_conversions() {
        assert_eq!(Src::from(3u32), Src::Imm(3));
        assert_eq!(Src::from(-1i32), Src::Imm(u32::MAX));
        assert_eq!(Src::f32imm(1.0), Src::Imm(1.0f32.to_bits()));
        assert_eq!(Src::from(Reg(4)), Src::Reg(Reg(4)));
    }

    #[test]
    fn units_are_classified() {
        let ld = Op::Ld {
            space: Space::Global,
            d: Reg(0),
            addr: Reg(1),
            offset: 0,
        };
        assert_eq!(ld.unit(), ExecUnit::Mem);
        let lds = Op::Ld {
            space: Space::Shared,
            d: Reg(0),
            addr: Reg(1),
            offset: 0,
        };
        assert_eq!(lds.unit(), ExecUnit::SharedMem);
        let div = Op::FAlu {
            op: FloatOp::Div,
            d: Reg(0),
            a: Reg(1),
            b: Src::Reg(Reg(2)),
        };
        assert_eq!(div.unit(), ExecUnit::Sfu);
        assert_eq!(Op::Bar.unit(), ExecUnit::Ctrl);
        assert_eq!(
            Op::IAlu {
                op: IntOp::Add,
                d: Reg(0),
                a: Reg(0),
                b: Src::Imm(1)
            }
            .unit(),
            ExecUnit::Alu
        );
    }

    #[test]
    fn max_reg_scans_all_operands() {
        let op = Op::FFma {
            d: Reg(3),
            a: Reg(9),
            b: Src::Reg(Reg(12)),
            c: Src::Imm(0),
        };
        assert_eq!(op.max_reg(), Some(12));
        assert_eq!(Op::Bar.max_reg(), None);
        let st = Op::St {
            space: Space::Global,
            addr: Reg(7),
            offset: 4,
            v: Reg(2),
        };
        assert_eq!(st.max_reg(), Some(7));
    }

    #[test]
    fn dest_identifies_writes() {
        assert_eq!(
            Op::Mov {
                d: Reg(5),
                a: Src::Imm(0)
            }
            .dest(),
            Some(Reg(5))
        );
        assert_eq!(
            Op::St {
                space: Space::Shared,
                addr: Reg(0),
                offset: 0,
                v: Reg(1)
            }
            .dest(),
            None
        );
    }
}
