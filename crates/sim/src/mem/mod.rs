//! Memory hierarchy models: coalescing, caches, DRAM and the combined system.

pub mod cache;
pub mod coalesce;
pub mod dram;
pub mod image;
pub mod system;

pub use cache::{Cache, CacheOutcome, CacheStats};
pub use coalesce::{coalesce, Transaction, SECTOR_BYTES};
pub use dram::{Dram, DramStats};
pub use system::{MemoryStats, MemorySystem};
