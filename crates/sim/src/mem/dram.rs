//! DRAM channel timing: fixed access latency plus bandwidth-limited service,
//! modelled as a per-channel FCFS queue.

use crate::config::DramConfig;

/// Statistics for the DRAM subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read transactions serviced.
    pub reads: u64,
    /// Write transactions serviced.
    pub writes: u64,
    /// Total cycles requests spent queued behind earlier requests.
    pub queue_cycles: u64,
}

/// The DRAM subsystem: `channels` independent FCFS queues, interleaved by
/// address.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    latency: u32,
    service_cycles: u32,
    next_free: Vec<u64>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM subsystem.
    ///
    /// `latency` is the fixed access latency; `service_cycles` the channel
    /// occupancy per 32-byte transaction (inverse bandwidth).
    pub fn new(cfg: DramConfig, latency: u32, service_cycles: u32) -> Self {
        let next_free = vec![0u64; cfg.channels];
        Self {
            cfg,
            latency,
            service_cycles,
            next_free,
            stats: DramStats::default(),
        }
    }

    /// The channel servicing `addr`.
    pub fn channel_of(&self, addr: u32) -> usize {
        (addr as usize / self.cfg.interleave_bytes) % self.cfg.channels
    }

    /// Issues a transaction at time `now`; returns the cycle its data is
    /// available (reads) or durably accepted (writes).
    pub fn access(&mut self, now: u64, addr: u32, write: bool) -> u64 {
        let ch = self.channel_of(addr);
        let start = now.max(self.next_free[ch]);
        self.stats.queue_cycles += start - now;
        self.next_free[ch] = start + u64::from(self.service_cycles);
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        start + u64::from(self.latency)
    }

    /// Resets queues and statistics.
    pub fn reset(&mut self) {
        self.next_free.fill(0);
        self.stats = DramStats::default();
    }

    /// Zeroes the accumulated statistics, leaving queue state untouched.
    pub fn clear_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(
            DramConfig {
                channels: 2,
                interleave_bytes: 256,
            },
            100,
            4,
        )
    }

    #[test]
    fn uncontended_access_pays_base_latency() {
        let mut d = dram();
        assert_eq!(d.access(10, 0, false), 110);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = dram();
        assert_eq!(d.access(0, 0, false), 100);
        // Same channel: queued behind the first (service = 4 cycles).
        assert_eq!(d.access(0, 32, false), 104);
        assert_eq!(d.access(0, 64, false), 108);
        assert_eq!(d.stats().queue_cycles, 4 + 8);
    }

    #[test]
    fn different_channels_do_not_interfere() {
        let mut d = dram();
        assert_eq!(d.channel_of(0), 0);
        assert_eq!(d.channel_of(256), 1);
        assert_eq!(d.access(0, 0, false), 100);
        assert_eq!(d.access(0, 256, false), 100);
    }

    #[test]
    fn reads_and_writes_counted() {
        let mut d = dram();
        d.access(0, 0, false);
        d.access(0, 256, true);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn reset_clears_queues() {
        let mut d = dram();
        d.access(0, 0, false);
        d.reset();
        assert_eq!(d.access(0, 0, false), 100);
        assert_eq!(d.stats().reads, 1);
    }
}
