//! The device memory image: byte-addressed storage backed by `u32` words.
//!
//! The simulated ISA is word-oriented — every load, store and atomic moves
//! exactly 32 bits — so the functional image stores words, not bytes, and
//! the dominant aligned access is a single indexed read/write instead of a
//! four-byte gather. Addresses remain **byte** addresses (the hardware
//! convention every kernel computes in); misaligned and out-of-bounds
//! accesses reproduce the byte-image semantics bit-for-bit:
//!
//! * a misaligned word access reads/writes the same little-endian byte
//!   range a flat byte array would (assembled from the two straddled
//!   words);
//! * an access is out of bounds iff any of its four bytes falls outside
//!   the image, in which case loads return [`OOB_POISON`], stores are
//!   dropped, and the access is counted — exactly as before.
//!
//! Misaligned addresses only arise from fault-corrupted address registers
//! (well-formed kernels compute word-aligned addresses), so the straddle
//! path is cold by construction.

/// Value returned by an out-of-bounds load.
pub const OOB_POISON: u32 = 0xdead_beef;

/// Loads the 32-bit word at byte address `addr`, counting an out-of-bounds
/// access in `oob` and returning [`OOB_POISON`] for it.
#[inline]
pub fn load_word(mem: &[u32], addr: u32, oob: &mut u64) -> u32 {
    let a = addr as usize;
    if addr & 3 == 0 {
        match mem.get(a >> 2) {
            Some(&w) => w,
            None => {
                *oob += 1;
                OOB_POISON
            }
        }
    } else {
        load_straddle(mem, addr, oob)
    }
}

/// Cold path of [`load_word`]: a load straddling two words.
#[cold]
fn load_straddle(mem: &[u32], addr: u32, oob: &mut u64) -> u32 {
    let a = addr as usize;
    let (i, o) = (a >> 2, (addr & 3) * 8);
    match (mem.get(i), mem.get(i + 1)) {
        (Some(&w0), Some(&w1)) => (w0 >> o) | (w1 << (32 - o)),
        _ => {
            *oob += 1;
            OOB_POISON
        }
    }
}

/// Stores `v` at byte address `addr`. Returns `true` when the word was
/// actually written (dropped out-of-bounds stores must not raise the dirty
/// high-water mark — a fault-corrupted address register would otherwise
/// force full-image zeroing on reset).
#[inline]
pub fn store_word(mem: &mut [u32], addr: u32, v: u32, oob: &mut u64) -> bool {
    let a = addr as usize;
    if addr & 3 == 0 {
        match mem.get_mut(a >> 2) {
            Some(w) => {
                *w = v;
                true
            }
            None => {
                *oob += 1;
                false
            }
        }
    } else {
        store_straddle(mem, addr, v, oob)
    }
}

/// Cold path of [`store_word`]: a read-modify-write of two straddled words.
#[cold]
fn store_straddle(mem: &mut [u32], addr: u32, v: u32, oob: &mut u64) -> bool {
    let a = addr as usize;
    let (i, o) = (a >> 2, (addr & 3) * 8);
    if i + 1 >= mem.len() {
        *oob += 1;
        return false;
    }
    // `low` masks the bytes below the straddle point: kept in the first
    // word, replaced in the second.
    let low = (1u32 << o) - 1;
    mem[i] = (mem[i] & low) | (v << o);
    mem[i + 1] = (mem[i + 1] & !low) | ((v >> (32 - o)) & low);
    true
}

/// Detects a fully coalesced warp access: 32 word-aligned, stride-4,
/// strictly ascending byte addresses that all fall inside the image.
/// Returns the word index of lane 0, i.e. `mem[base..base + 32]` is exactly
/// the 32 words the per-lane loop would touch, in lane order.
///
/// The interpreter uses this to replace 32 scattered [`load_word`]/
/// [`store_word`] calls with one row copy. The in-bounds requirement is part
/// of the contract: any lane out of bounds must fall back to the per-lane
/// path so poison values and the out-of-bounds count stay bit-identical.
#[inline]
pub fn contiguous_row(addrs: &[u32; 32], words: usize) -> Option<usize> {
    let a0 = addrs[0];
    // Alignment, and no u32 wraparound over the 128-byte span.
    if a0 & 3 != 0 || a0.checked_add(4 * 31).is_none() {
        return None;
    }
    let base = (a0 >> 2) as usize;
    if base + 32 > words {
        return None;
    }
    for (lane, &a) in addrs.iter().enumerate().skip(1) {
        if a != a0 + 4 * lane as u32 {
            return None;
        }
    }
    Some(base)
}

/// Reads the byte at byte address `addr` (host-side raw access; panics when
/// out of bounds, like indexing a byte array would).
pub fn get_byte(mem: &[u32], addr: usize) -> u8 {
    (mem[addr >> 2] >> ((addr & 3) * 8)) as u8
}

/// Writes the byte at byte address `addr` (host-side raw access; panics
/// when out of bounds).
pub fn set_byte(mem: &mut [u32], addr: usize, v: u8) {
    let sh = (addr & 3) * 8;
    let w = &mut mem[addr >> 2];
    *w = (*w & !(0xffu32 << sh)) | (u32::from(v) << sh);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-array reference model of the old image.
    fn ref_load(bytes: &[u8], addr: u32, oob: &mut u64) -> u32 {
        match bytes.get(addr as usize..addr as usize + 4) {
            Some(s) => u32::from_le_bytes([s[0], s[1], s[2], s[3]]),
            None => {
                *oob += 1;
                OOB_POISON
            }
        }
    }

    fn ref_store(bytes: &mut [u8], addr: u32, v: u32, oob: &mut u64) -> bool {
        match bytes.get_mut(addr as usize..addr as usize + 4) {
            Some(s) => {
                s.copy_from_slice(&v.to_le_bytes());
                true
            }
            None => {
                *oob += 1;
                false
            }
        }
    }

    fn to_bytes(mem: &[u32]) -> Vec<u8> {
        mem.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn loads_match_byte_image_at_every_alignment() {
        let mem: Vec<u32> = (0..8u32)
            .map(|i| i.wrapping_mul(0x0104_0302) ^ 0xa5)
            .collect();
        let bytes = to_bytes(&mem);
        for addr in 0..(mem.len() as u32 * 4 + 8) {
            let (mut o1, mut o2) = (0u64, 0u64);
            assert_eq!(
                load_word(&mem, addr, &mut o1),
                ref_load(&bytes, addr, &mut o2),
                "value diverged at addr {addr}"
            );
            assert_eq!(o1, o2, "oob count diverged at addr {addr}");
        }
    }

    #[test]
    fn stores_match_byte_image_at_every_alignment() {
        for addr in 0..40u32 {
            let mut mem: Vec<u32> = (0..8u32).map(|i| i ^ 0xdeadbeef).collect();
            let mut bytes = to_bytes(&mem);
            let (mut o1, mut o2) = (0u64, 0u64);
            let w1 = store_word(&mut mem, addr, 0x1122_3344, &mut o1);
            let w2 = ref_store(&mut bytes, addr, 0x1122_3344, &mut o2);
            assert_eq!(w1, w2, "written flag diverged at addr {addr}");
            assert_eq!(o1, o2, "oob count diverged at addr {addr}");
            assert_eq!(to_bytes(&mem), bytes, "image diverged at addr {addr}");
        }
    }

    #[test]
    fn byte_accessors_roundtrip() {
        let mut mem = vec![0u32; 2];
        for (i, v) in [(0usize, 0x11u8), (1, 0x22), (5, 0x55), (7, 0x77)] {
            set_byte(&mut mem, i, v);
            assert_eq!(get_byte(&mem, i), v);
        }
        assert_eq!(mem[0], 0x0000_2211);
        assert_eq!(mem[1], 0x7700_5500);
    }

    #[test]
    fn contiguous_row_accepts_only_aligned_full_stride1_spans() {
        let mut addrs = [0u32; 32];
        for (lane, a) in addrs.iter_mut().enumerate() {
            *a = 256 + 4 * lane as u32;
        }
        assert_eq!(contiguous_row(&addrs, 1024), Some(64));
        // Tail lane out of bounds.
        assert_eq!(contiguous_row(&addrs, 64 + 31), None);
        // Exactly in bounds.
        assert_eq!(contiguous_row(&addrs, 64 + 32), Some(64));
        // Misaligned base.
        let mut mis = addrs;
        for a in &mut mis {
            *a += 2;
        }
        assert_eq!(contiguous_row(&mis, 1024), None);
        // One lane off-stride.
        let mut gap = addrs;
        gap[17] += 4;
        assert_eq!(contiguous_row(&gap, 1024), None);
        // Uniform (all-same) addresses are not stride-1.
        let same = [256u32; 32];
        assert_eq!(contiguous_row(&same, 1024), None);
        // Wraparound near the top of the address space.
        let mut wrap = [0u32; 32];
        for (lane, a) in wrap.iter_mut().enumerate() {
            *a = (u32::MAX - 63).wrapping_add(4 * lane as u32) & !3;
        }
        assert_eq!(contiguous_row(&wrap, usize::MAX), None);
    }

    #[test]
    fn oob_load_poisons_and_counts() {
        let mem = vec![0u32; 2];
        let mut oob = 0;
        assert_eq!(load_word(&mem, 8, &mut oob), OOB_POISON);
        assert_eq!(load_word(&mem, 3, &mut oob), 0, "straddle in bounds");
        assert_eq!(
            load_word(&mem, 5, &mut oob),
            OOB_POISON,
            "straddle off the end"
        );
        assert_eq!(oob, 2);
    }
}
