//! Set-associative cache timing model with in-flight fill (MSHR-style)
//! merging.
//!
//! The cache tracks tags only — data always lives in the functional global
//! memory image. A lookup returns how the access would have been served,
//! which the memory system converts into latency.

use crate::config::CacheConfig;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Tag present and fill complete.
    Hit,
    /// Tag present but the line is still being filled; carries the cycle the
    /// fill completes (hit-under-miss merge).
    HitPending {
        /// Cycle at which the in-flight fill completes.
        ready_at: u64,
    },
    /// Tag absent; a new fill was allocated. Carries the evicted dirty line
    /// address if a writeback is required.
    Miss {
        /// Sector-aligned address of the evicted dirty line, if any.
        writeback: Option<u32>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Cycle at which the fill completes (0 when resident).
    ready_at: u64,
    /// LRU timestamp.
    last_use: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    ready_at: 0,
    last_use: 0,
};

/// Statistics kept by each cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit a resident line.
    pub hits: u64,
    /// Accesses merged into an in-flight fill.
    pub pending_hits: u64,
    /// Accesses that allocated a new fill.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.pending_hits + self.misses
    }

    /// Hit rate counting pending hits as hits; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.pending_hits) as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, LRU cache timing model.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    /// `log2(line_bytes)` — geometry is power-of-two, so the per-access
    /// set/tag extraction is two shifts instead of two integer divisions
    /// (which dominated the lookup cost on the issue hot path).
    line_shift: u32,
    /// `log2(line_bytes * sets)`.
    tag_shift: u32,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or ways, or a non-power-of-
    /// two line size or set count (configurations from
    /// [`crate::config::GpuConfig::validate`] never do).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0, "degenerate cache geometry");
        assert!(
            cfg.sets.is_power_of_two() && cfg.line_bytes.is_power_of_two(),
            "cache geometry must be power-of-two"
        );
        let lines = vec![INVALID; cfg.sets * cfg.ways];
        let line_shift = cfg.line_bytes.trailing_zeros();
        let tag_shift = line_shift + cfg.sets.trailing_zeros();
        Self {
            cfg,
            lines,
            clock: 0,
            stats: CacheStats::default(),
            line_shift,
            tag_shift,
        }
    }

    #[inline]
    fn set_of(&self, addr: u32) -> usize {
        (addr as usize >> self.line_shift) & (self.cfg.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.tag_shift
    }

    /// Looks up `addr` at time `now`. On a miss the caller must complete the
    /// allocation with [`Cache::fill`]. `is_write` marks the line dirty on
    /// hit (write-back).
    pub fn access(&mut self, now: u64, addr: u32, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        let sets = self.cfg.sets as u32;
        let line_bytes = self.cfg.line_bytes as u32;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        for line in ways.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = self.clock;
                if is_write {
                    line.dirty = true;
                }
                if line.ready_at > now {
                    self.stats.pending_hits += 1;
                    return CacheOutcome::HitPending {
                        ready_at: line.ready_at,
                    };
                }
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }

        // Miss: evict LRU (prefer invalid ways).
        self.stats.misses += 1;
        let victim_idx = (0..self.cfg.ways)
            .min_by_key(|&w| {
                let l = &ways[w];
                if l.valid {
                    (1u8, l.last_use)
                } else {
                    (0u8, 0)
                }
            })
            .expect("ways > 0");
        let victim = ways[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some((victim.tag * sets + set as u32) * line_bytes)
        } else {
            None
        };
        ways[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            ready_at: u64::MAX, // provisional until fill() is called
            last_use: self.clock,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Completes the fill started by a miss on `addr`: the line becomes
    /// usable at cycle `ready_at`.
    pub fn fill(&mut self, addr: u32, ready_at: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        for line in &mut self.lines[base..base + self.cfg.ways] {
            if line.valid && line.tag == tag {
                line.ready_at = ready_at;
                return;
            }
        }
        // The line may have been evicted between access() and fill() by a
        // conflicting allocation in the same batch; that is benign.
    }

    /// Invalidates `addr` if present (used by write-through L1s on stores).
    pub fn invalidate(&mut self, addr: u32) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        for line in &mut self.lines[base..base + self.cfg.ways] {
            if line.valid && line.tag == tag {
                *line = INVALID;
                return;
            }
        }
    }

    /// Drops all content (used between independent experiment runs).
    pub fn flush(&mut self) {
        self.lines.fill(INVALID);
    }

    /// Zeroes the accumulated statistics.
    pub fn clear_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(matches!(
            c.access(0, 0x100, false),
            CacheOutcome::Miss { writeback: None }
        ));
        c.fill(0x100, 10);
        assert!(matches!(
            c.access(5, 0x100, false),
            CacheOutcome::HitPending { ready_at: 10 }
        ));
        assert!(matches!(c.access(20, 0x100, false), CacheOutcome::Hit));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().pending_hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = tiny();
        c.access(0, 0x100, false);
        c.fill(0x100, 0);
        assert!(matches!(c.access(1, 0x120, false), CacheOutcome::Hit));
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = tiny();
        // Set 0 lines: addresses with (addr/64) % 2 == 0 → 0x000, 0x080, 0x100...
        c.access(0, 0x000, true); // dirty
        c.fill(0x000, 0);
        c.access(1, 0x080, false);
        c.fill(0x080, 0);
        // Touch 0x080 so 0x000 is LRU.
        c.access(2, 0x080, false);
        // New line in set 0 evicts dirty 0x000.
        match c.access(3, 0x100, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0, 0x100, false);
        c.fill(0x100, 0);
        c.invalidate(0x100);
        assert!(matches!(
            c.access(1, 0x100, false),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, 0x0, false);
        c.fill(0x0, 0);
        c.flush();
        assert!(matches!(c.access(1, 0x0, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let mut c = tiny();
        c.access(0, 0x0, false);
        c.fill(0x0, 0);
        c.access(1, 0x0, false);
        c.access(2, 0x0, false);
        let s = c.stats();
        assert_eq!(s.accesses(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
