//! The full memory hierarchy: per-SM L1 data caches, a shared L2 and DRAM.
//!
//! Only timing flows through here — functional values are read/written
//! directly on the global-memory image by the execution engine. This split is
//! sound for the workloads we run because cross-block communication happens
//! across kernel launches (see DESIGN.md).

use crate::config::GpuConfig;
use crate::mem::cache::{Cache, CacheOutcome, CacheStats};
use crate::mem::coalesce::Transaction;
use crate::mem::dram::{Dram, DramStats};

/// Aggregated memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    /// Sum of all SMs' L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Total coalesced transactions processed.
    pub transactions: u64,
}

/// The shared memory hierarchy of the GPU.
///
/// `Clone` copies the full timing state (cache tags, DRAM bank timers,
/// statistics) — device snapshots rely on this to make restored runs
/// bit-identical in both values and timing.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    l1_hit_latency: u32,
    l2_hit_latency: u32,
    atomic_latency: u32,
    transactions: u64,
}

impl MemorySystem {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self {
            l1: (0..cfg.num_sms)
                .map(|_| Cache::new(cfg.l1.clone()))
                .collect(),
            l2: Cache::new(cfg.l2.clone()),
            dram: Dram::new(
                cfg.dram.clone(),
                cfg.timing.dram_latency,
                cfg.timing.dram_service_cycles,
            ),
            l1_hit_latency: cfg.timing.l1_hit_latency,
            l2_hit_latency: cfg.timing.l2_hit_latency,
            atomic_latency: cfg.timing.atomic_latency,
            transactions: 0,
        }
    }

    /// Services one transaction beyond the L1 (shared L2 → DRAM). Returns the
    /// completion cycle.
    fn access_l2(&mut self, now: u64, tx: Transaction) -> u64 {
        let l2_time = now + u64::from(self.l2_hit_latency);
        match self.l2.access(now, tx.addr, tx.write) {
            CacheOutcome::Hit => l2_time,
            CacheOutcome::HitPending { ready_at } => ready_at.max(l2_time),
            CacheOutcome::Miss { writeback } => {
                if let Some(wb_addr) = writeback {
                    // Dirty eviction consumes DRAM bandwidth but is off the
                    // critical path of this request.
                    let _ = self.dram.access(now, wb_addr, true);
                }
                let done = self.dram.access(l2_time, tx.addr, tx.write);
                self.l2.fill(tx.addr, done);
                done
            }
        }
    }

    /// Services a warp's coalesced transactions issued by SM `sm` at `now`.
    ///
    /// Returns the cycle at which the whole warp access completes (the max
    /// over its transactions). Loads allocate in L1; stores are
    /// write-through/no-allocate at L1 (the line is invalidated) and
    /// write-back at L2, matching contemporary NVIDIA parts.
    pub fn access(&mut self, sm: usize, now: u64, txs: &[Transaction]) -> u64 {
        let mut done = now + u64::from(self.l1_hit_latency);
        for &tx in txs {
            self.transactions += 1;
            let t = if tx.write {
                self.l1[sm].invalidate(tx.addr);
                self.access_l2(now, tx)
            } else {
                match self.l1[sm].access(now, tx.addr, false) {
                    CacheOutcome::Hit => now + u64::from(self.l1_hit_latency),
                    CacheOutcome::HitPending { ready_at } => {
                        ready_at.max(now + u64::from(self.l1_hit_latency))
                    }
                    CacheOutcome::Miss { writeback } => {
                        debug_assert!(writeback.is_none(), "L1 never holds dirty lines");
                        let t = self.access_l2(now, tx);
                        self.l1[sm].fill(tx.addr, t);
                        t
                    }
                }
            };
            done = done.max(t);
        }
        done
    }

    /// Services an atomic read-modify-write (performed at the L2, as on real
    /// hardware). Returns the completion cycle.
    pub fn access_atomic(&mut self, now: u64, addr: u32) -> u64 {
        self.transactions += 1;
        let tx = Transaction { addr, write: true };
        // Atomics bypass L1 on all SMs sharing the line; we conservatively
        // invalidate the line in every L1.
        for l1 in &mut self.l1 {
            l1.invalidate(addr);
        }
        self.access_l2(now, tx) + u64::from(self.atomic_latency)
    }

    /// Flushes all caches and resets DRAM queues (between experiments).
    /// Cache statistics keep accumulating; DRAM statistics are zeroed along
    /// with its queues (see [`Dram::reset`]). Pair with
    /// [`MemorySystem::clear_stats`] for a fully fresh hierarchy.
    pub fn reset(&mut self) {
        for l1 in &mut self.l1 {
            l1.flush();
        }
        self.l2.flush();
        self.dram.reset();
    }

    /// Zeroes all accumulated statistics; cache content and DRAM queue
    /// state are untouched.
    pub fn clear_stats(&mut self) {
        for l1 in &mut self.l1 {
            l1.clear_stats();
        }
        self.l2.clear_stats();
        self.dram.clear_stats();
        self.transactions = 0;
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemoryStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1 {
            let s = c.stats();
            l1.hits += s.hits;
            l1.pending_hits += s.pending_hits;
            l1.misses += s.misses;
            l1.writebacks += s.writebacks;
        }
        MemoryStats {
            l1,
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            transactions: self.transactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::mem::coalesce::Transaction;

    fn sys() -> MemorySystem {
        MemorySystem::new(&GpuConfig::tiny_2sm())
    }

    fn tx(addr: u32) -> Transaction {
        Transaction { addr, write: false }
    }

    #[test]
    fn cold_load_reaches_dram() {
        let cfg = GpuConfig::tiny_2sm();
        let mut m = sys();
        let done = m.access(0, 0, &[tx(0x1000)]);
        let min = u64::from(cfg.timing.l2_hit_latency + cfg.timing.dram_latency);
        assert!(done >= min, "cold miss must pay L2+DRAM: {done} >= {min}");
        assert_eq!(m.stats().dram.reads, 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let cfg = GpuConfig::tiny_2sm();
        let mut m = sys();
        let t1 = m.access(0, 0, &[tx(0x1000)]);
        let t2 = m.access(0, t1 + 1, &[tx(0x1000)]);
        assert_eq!(t2, t1 + 1 + u64::from(cfg.timing.l1_hit_latency));
        assert_eq!(m.stats().l1.hits, 1);
    }

    #[test]
    fn l1s_are_private_per_sm() {
        let mut m = sys();
        let t1 = m.access(0, 0, &[tx(0x1000)]);
        // Other SM misses its own L1 but hits the shared L2.
        let t2 = m.access(1, t1 + 1, &[tx(0x1000)]);
        let s = m.stats();
        assert_eq!(s.l1.misses, 2);
        assert_eq!(s.l2.misses, 1);
        assert!(t2 < t1 + 1 + 200 + 220, "L2 hit, not DRAM");
    }

    #[test]
    fn stores_invalidate_l1() {
        let mut m = sys();
        let t1 = m.access(0, 0, &[tx(0x40)]);
        let _ = m.access(
            0,
            t1,
            &[Transaction {
                addr: 0x40,
                write: true,
            }],
        );
        // Reload misses L1 (invalidated) but hits L2.
        let before = m.stats().l1.misses;
        let _ = m.access(0, t1 + 500, &[tx(0x40)]);
        assert_eq!(m.stats().l1.misses, before + 1);
    }

    #[test]
    fn atomic_pays_atomic_latency() {
        let cfg = GpuConfig::tiny_2sm();
        let mut m = sys();
        let done = m.access_atomic(0, 0x80);
        assert!(done >= u64::from(cfg.timing.atomic_latency));
        assert_eq!(m.stats().transactions, 1);
    }

    #[test]
    fn multi_transaction_access_returns_max() {
        let mut m = sys();
        let one = m.access(0, 0, &[tx(0x0)]);
        m.reset();
        let many: Vec<Transaction> = (0..8).map(|i| tx(i * 0x1000)).collect();
        let all = m.access(0, 0, &many);
        assert!(all >= one, "more transactions cannot finish earlier");
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = sys();
        let _ = m.access(0, 0, &[tx(0x1000)]);
        m.reset();
        let before = m.stats().l1.misses;
        let _ = m.access(0, 0, &[tx(0x1000)]);
        assert_eq!(m.stats().l1.misses, before + 1);
    }
}
