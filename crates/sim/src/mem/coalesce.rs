//! Memory access coalescing: collapses the per-lane addresses of a warp
//! memory instruction into the minimal set of 32-byte sector transactions.

/// Size of one memory transaction (sector) in bytes.
pub const SECTOR_BYTES: u32 = 32;

/// A single memory transaction produced by the coalescer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Sector-aligned byte address.
    pub addr: u32,
    /// True for stores.
    pub write: bool,
}

/// A fixed-capacity buffer of coalesced transactions — one warp memory
/// instruction produces at most 32 (one sector per lane), so the buffer
/// lives inline and the hot path never touches the heap.
pub type TxBuf = crate::inline_vec::InlineVec<Transaction>;

/// Coalesces the active lanes' addresses into unique sector transactions,
/// writing them into `out` (cleared first). Allocation-free: sorting and
/// de-duplication happen in a stack scratch array.
///
/// `addrs` holds one byte address per lane; `mask` selects the active lanes.
/// The result is sorted by address and de-duplicated, matching the behaviour
/// of hardware coalescers for naturally aligned 4-byte accesses.
pub fn coalesce_into(addrs: &[u32; 32], mask: u32, write: bool, out: &mut TxBuf) {
    out.clear();
    if mask == 0 {
        return;
    }
    // Span of the active sectors. Unit-stride and broadcast accesses — the
    // overwhelming majority — touch a handful of adjacent sectors, so the
    // span almost always fits a 64-bit occupancy bitmap and the sort below
    // never runs: set a bit per sector, then emit set bits in order
    // (already sorted and de-duplicated by construction).
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    let mut m = mask;
    while m != 0 {
        let s = addrs[m.trailing_zeros() as usize] / SECTOR_BYTES;
        lo = lo.min(s);
        hi = hi.max(s);
        m &= m - 1;
    }
    if hi - lo < 64 {
        let mut bits = 0u64;
        let mut m = mask;
        while m != 0 {
            bits |= 1u64 << (addrs[m.trailing_zeros() as usize] / SECTOR_BYTES - lo);
            m &= m - 1;
        }
        while bits != 0 {
            out.push(Transaction {
                addr: (lo + bits.trailing_zeros()) * SECTOR_BYTES,
                write,
            });
            bits &= bits - 1;
        }
        return;
    }
    // Scattered access (span over 64 sectors): sort-and-dedup fallback.
    let mut sectors = [0u32; 32];
    let mut n = 0usize;
    for (lane, &a) in addrs.iter().enumerate() {
        if mask & (1u32 << lane) != 0 {
            sectors[n] = a / SECTOR_BYTES;
            n += 1;
        }
    }
    sectors[..n].sort_unstable();
    let mut prev = None;
    for &s in &sectors[..n] {
        if prev != Some(s) {
            out.push(Transaction {
                addr: s * SECTOR_BYTES,
                write,
            });
            prev = Some(s);
        }
    }
}

/// Heap-allocating convenience wrapper around [`coalesce_into`] for tests
/// and offline analysis. The execution hot path uses [`coalesce_into`].
pub fn coalesce(addrs: &[u32], mask: u32, write: bool) -> Vec<Transaction> {
    let mut padded = [0u32; 32];
    for (lane, &a) in addrs.iter().take(32).enumerate() {
        padded[lane] = a;
    }
    // Lanes beyond the provided slice stay inactive.
    let provided = addrs.len().min(32) as u32;
    let mask = if provided == 32 {
        mask
    } else {
        mask & ((1u32 << provided) - 1)
    };
    let mut buf = TxBuf::new();
    coalesce_into(&padded, mask, write, &mut buf);
    buf.as_slice().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_uses_four_sectors() {
        // 32 lanes × 4 bytes = 128 bytes = 4 sectors.
        let addrs: Vec<u32> = (0..32).map(|i| 0x1000 + i * 4).collect();
        let txs = coalesce(&addrs, u32::MAX, false);
        assert_eq!(txs.len(), 4);
        assert_eq!(txs[0].addr, 0x1000);
        assert_eq!(txs[3].addr, 0x1000 + 96);
    }

    #[test]
    fn strided_access_explodes_transactions() {
        // Stride of 128 bytes: every lane in its own sector.
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
        let txs = coalesce(&addrs, u32::MAX, true);
        assert_eq!(txs.len(), 32);
        assert!(txs.iter().all(|t| t.write));
    }

    #[test]
    fn same_address_broadcast_is_one_transaction() {
        let addrs = [0x40u32; 32];
        let txs = coalesce(&addrs, u32::MAX, false);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].addr, 0x40);
    }

    #[test]
    fn inactive_lanes_are_ignored() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
        let txs = coalesce(&addrs, 0b1, false);
        assert_eq!(txs.len(), 1);
        let txs = coalesce(&addrs, 0, false);
        assert!(txs.is_empty());
    }

    #[test]
    fn coalesce_into_matches_vec_path() {
        let addrs: [u32; 32] = std::array::from_fn(|i| (i as u32 % 7) * 40 + 13);
        for mask in [u32::MAX, 0b1010, 0, 0xffff_0000] {
            let mut buf = TxBuf::new();
            coalesce_into(&addrs, mask, true, &mut buf);
            assert_eq!(buf.as_slice(), coalesce(&addrs, mask, true).as_slice());
        }
    }

    #[test]
    fn txbuf_accumulates_and_compares_by_content() {
        let mut a = TxBuf::new();
        assert!(a.is_empty());
        a.push(Transaction {
            addr: 32,
            write: false,
        });
        assert_eq!(a.len(), 1);
        let mut b = TxBuf::new();
        b.push(Transaction {
            addr: 32,
            write: false,
        });
        assert_eq!(a, b, "equality ignores unused capacity");
        b.push(Transaction {
            addr: 64,
            write: true,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn full_warp_fills_txbuf_to_capacity() {
        // 32 lanes, each in its own sector: the worst case exactly fits.
        let addrs: [u32; 32] = std::array::from_fn(|i| i as u32 * 128);
        let mut buf = TxBuf::new();
        coalesce_into(&addrs, u32::MAX, false, &mut buf);
        assert_eq!(buf.len(), 32);
    }

    #[test]
    fn bitmap_fast_path_matches_sort_reference() {
        // Address patterns straddling the 64-sector window boundary on both
        // sides, compared against a plain sort-and-dedup reference model.
        let patterns: [[u32; 32]; 4] = [
            std::array::from_fn(|i| 0x1000 + i as u32 * 4), // unit stride
            std::array::from_fn(|i| i as u32 * 63),         // just inside
            std::array::from_fn(|i| i as u32 * 65),         // just outside
            std::array::from_fn(|i| (i as u32).wrapping_mul(0x9e37_79b9) % 8192),
        ];
        for addrs in &patterns {
            for mask in [u32::MAX, 1, 0x8000_0001, 0xaaaa_5555] {
                let mut reference: Vec<u32> = (0..32)
                    .filter(|l| mask & (1u32 << l) != 0)
                    .map(|l| addrs[l as usize] / SECTOR_BYTES * SECTOR_BYTES)
                    .collect();
                reference.sort_unstable();
                reference.dedup();
                let mut buf = TxBuf::new();
                coalesce_into(addrs, mask, false, &mut buf);
                let got: Vec<u32> = buf.as_slice().iter().map(|t| t.addr).collect();
                assert_eq!(got, reference, "pattern {addrs:?} mask {mask:#x}");
            }
        }
    }

    #[test]
    fn transactions_are_sector_aligned() {
        let addrs: Vec<u32> = (0..32).map(|i| 13 + i * 4).collect();
        for t in coalesce(&addrs, u32::MAX, false) {
            assert_eq!(t.addr % SECTOR_BYTES, 0);
        }
    }
}
