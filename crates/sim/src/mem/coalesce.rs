//! Memory access coalescing: collapses the per-lane addresses of a warp
//! memory instruction into the minimal set of 32-byte sector transactions.

/// Size of one memory transaction (sector) in bytes.
pub const SECTOR_BYTES: u32 = 32;

/// A single memory transaction produced by the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Sector-aligned byte address.
    pub addr: u32,
    /// True for stores.
    pub write: bool,
}

/// Coalesces the active lanes' addresses into unique sector transactions.
///
/// `addrs` holds one byte address per lane; `mask` selects the active lanes.
/// The result is sorted by address and de-duplicated, matching the behaviour
/// of hardware coalescers for naturally aligned 4-byte accesses.
pub fn coalesce(addrs: &[u32], mask: u32, write: bool) -> Vec<Transaction> {
    let mut sectors: Vec<u32> = addrs
        .iter()
        .enumerate()
        .filter(|(lane, _)| mask & (1u32 << lane) != 0)
        .map(|(_, &a)| a / SECTOR_BYTES)
        .collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors
        .into_iter()
        .map(|s| Transaction {
            addr: s * SECTOR_BYTES,
            write,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_uses_four_sectors() {
        // 32 lanes × 4 bytes = 128 bytes = 4 sectors.
        let addrs: Vec<u32> = (0..32).map(|i| 0x1000 + i * 4).collect();
        let txs = coalesce(&addrs, u32::MAX, false);
        assert_eq!(txs.len(), 4);
        assert_eq!(txs[0].addr, 0x1000);
        assert_eq!(txs[3].addr, 0x1000 + 96);
    }

    #[test]
    fn strided_access_explodes_transactions() {
        // Stride of 128 bytes: every lane in its own sector.
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
        let txs = coalesce(&addrs, u32::MAX, true);
        assert_eq!(txs.len(), 32);
        assert!(txs.iter().all(|t| t.write));
    }

    #[test]
    fn same_address_broadcast_is_one_transaction() {
        let addrs = [0x40u32; 32];
        let txs = coalesce(&addrs, u32::MAX, false);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].addr, 0x40);
    }

    #[test]
    fn inactive_lanes_are_ignored() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
        let txs = coalesce(&addrs, 0b1, false);
        assert_eq!(txs.len(), 1);
        let txs = coalesce(&addrs, 0, false);
        assert!(txs.is_empty());
    }

    #[test]
    fn transactions_are_sector_aligned() {
        let addrs: Vec<u32> = (0..32).map(|i| 13 + i * 4).collect();
        for t in coalesce(&addrs, u32::MAX, false) {
            assert_eq!(t.addr % SECTOR_BYTES, 0);
        }
    }
}
