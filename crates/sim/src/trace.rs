//! Execution traces: which block ran where and when.
//!
//! The trace is the evidence base for the paper's safety argument — the
//! diversity analyzer in `higpu-core` consumes it to prove that redundant
//! thread blocks executed on different SMs at different times.

use crate::kernel::{BlockFootprint, KernelId, LaunchAttrs};

/// Spacetime record of one executed thread block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// Owning kernel.
    pub kernel: KernelId,
    /// Linear block index within the grid.
    pub block: u32,
    /// SM that executed the block.
    pub sm: usize,
    /// Dispatch cycle.
    pub start: u64,
    /// Completion cycle.
    pub end: u64,
}

impl BlockRecord {
    /// True if this block's execution interval overlaps `other`'s.
    pub fn overlaps(&self, other: &BlockRecord) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Lifecycle record of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel identifier.
    pub id: KernelId,
    /// Program name.
    pub program: String,
    /// Scheduling attributes of the launch.
    pub attrs: LaunchAttrs,
    /// Cycle the launch was submitted by the host.
    pub launched: u64,
    /// Cycle the kernel became visible to the GPU front-end.
    pub arrival: u64,
    /// Cycle the first block was dispatched (`None` until then).
    pub first_dispatch: Option<u64>,
    /// Cycle the last block completed (`None` until finished).
    pub completion: Option<u64>,
    /// Total blocks in the grid.
    pub blocks: u32,
    /// Per-block resource footprint (for occupancy/classification analysis).
    pub footprint: BlockFootprint,
}

impl KernelRecord {
    /// Kernel residence time on the GPU (first dispatch → completion), if
    /// finished.
    pub fn execution_cycles(&self) -> Option<u64> {
        match (self.first_dispatch, self.completion) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }

    /// Latency from front-end arrival to completion, if finished.
    pub fn turnaround_cycles(&self) -> Option<u64> {
        self.completion.map(|e| e - self.arrival)
    }
}

/// The complete execution trace of a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Per-block spacetime records, in completion order.
    pub blocks: Vec<BlockRecord>,
    /// Per-kernel lifecycle records, in launch order.
    pub kernels: Vec<KernelRecord>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the trace in place, keeping the allocated capacity (used by
    /// [`higpu_sim::gpu::Gpu::reset`](crate::gpu::Gpu::reset) between
    /// campaign trials).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.kernels.clear();
    }

    /// Block records belonging to `kernel`.
    pub fn blocks_of(&self, kernel: KernelId) -> impl Iterator<Item = &BlockRecord> {
        self.blocks.iter().filter(move |b| b.kernel == kernel)
    }

    /// The kernel record for `kernel`, if present.
    pub fn kernel(&self, kernel: KernelId) -> Option<&KernelRecord> {
        self.kernels.iter().find(|k| k.id == kernel)
    }

    /// Completion cycle of the last kernel to finish, if all have finished.
    pub fn makespan(&self) -> Option<u64> {
        let mut max = 0;
        for k in &self.kernels {
            max = max.max(k.completion?);
        }
        Some(max)
    }

    /// Set of SMs used by `kernel`.
    pub fn sms_used_by(&self, kernel: KernelId) -> Vec<usize> {
        let mut sms: Vec<usize> = self.blocks_of(kernel).map(|b| b.sm).collect();
        sms.sort_unstable();
        sms.dedup();
        sms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kernel: u64, block: u32, sm: usize, start: u64, end: u64) -> BlockRecord {
        BlockRecord {
            kernel: KernelId(kernel),
            block,
            sm,
            start,
            end,
        }
    }

    #[test]
    fn overlap_detection() {
        let a = rec(0, 0, 0, 10, 20);
        assert!(a.overlaps(&rec(1, 0, 1, 15, 25)));
        assert!(a.overlaps(&rec(1, 0, 1, 5, 11)));
        assert!(
            !a.overlaps(&rec(1, 0, 1, 20, 30)),
            "touching is not overlap"
        );
        assert!(!a.overlaps(&rec(1, 0, 1, 0, 10)));
        assert!(a.overlaps(&a.clone()));
    }

    #[test]
    fn trace_queries() {
        let mut t = ExecutionTrace::new();
        t.blocks.push(rec(0, 0, 2, 0, 10));
        t.blocks.push(rec(0, 1, 4, 5, 15));
        t.blocks.push(rec(1, 0, 2, 20, 30));
        assert_eq!(t.blocks_of(KernelId(0)).count(), 2);
        assert_eq!(t.sms_used_by(KernelId(0)), vec![2, 4]);
        assert_eq!(t.sms_used_by(KernelId(1)), vec![2]);
    }

    #[test]
    fn makespan_requires_all_completions() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(KernelRecord {
            id: KernelId(0),
            program: "a".into(),
            attrs: Default::default(),
            launched: 0,
            arrival: 0,
            first_dispatch: Some(1),
            completion: Some(100),
            blocks: 1,
            footprint: BlockFootprint::default(),
        });
        assert_eq!(t.makespan(), Some(100));
        t.kernels.push(KernelRecord {
            id: KernelId(1),
            program: "b".into(),
            attrs: Default::default(),
            launched: 0,
            arrival: 5,
            first_dispatch: None,
            completion: None,
            blocks: 1,
            footprint: BlockFootprint::default(),
        });
        assert_eq!(t.makespan(), None);
    }

    #[test]
    fn kernel_record_durations() {
        let k = KernelRecord {
            id: KernelId(0),
            program: "a".into(),
            attrs: Default::default(),
            launched: 0,
            arrival: 10,
            first_dispatch: Some(12),
            completion: Some(112),
            blocks: 4,
            footprint: BlockFootprint::default(),
        };
        assert_eq!(k.execution_cycles(), Some(100));
        assert_eq!(k.turnaround_cycles(), Some(102));
    }
}
