//! Resident thread-block state on an SM.

use crate::kernel::{BlockFootprint, Dim3, KernelId};
use crate::program::Program;
use crate::warp::{Warp, WarpState};
use std::sync::Arc;

/// Geometry context visible to every thread of a block (CUDA built-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDims {
    /// Block index within the grid.
    pub ctaid: (u32, u32, u32),
    /// Block dimensions.
    pub ntid: Dim3,
    /// Grid dimensions.
    pub nctaid: Dim3,
}

impl BlockDims {
    /// Decomposes `thread_linear` into `(tid.x, tid.y, tid.z)`.
    pub fn tid(&self, thread_linear: u32) -> (u32, u32, u32) {
        self.ntid.coords(thread_linear)
    }
}

/// A thread block resident on an SM.
///
/// `Clone` deep-copies the execution state (warps, shared memory) while the
/// program and parameters stay behind their `Arc`s — the per-block cost of a
/// device snapshot ([`crate::gpu::Gpu::snapshot`]).
#[derive(Debug, Clone)]
pub struct BlockState {
    /// Owning kernel launch.
    pub kernel: KernelId,
    /// Linear block index within the grid.
    pub block_linear: u32,
    /// Geometry visible to threads.
    pub dims: BlockDims,
    /// The program being executed.
    pub program: Arc<Program>,
    /// Kernel parameters.
    pub params: Arc<[u32]>,
    /// Per-block shared memory (word storage, byte-addressed — see
    /// [`crate::mem::image`]; byte footprints round up to whole words).
    pub shared: Vec<u32>,
    /// The block's warps.
    pub warps: Vec<Warp>,
    /// Warps currently waiting at the barrier.
    pub barrier_arrived: usize,
    /// Warps that have not finished.
    pub warps_running: usize,
    /// Cycle the block was dispatched to the SM.
    pub start_cycle: u64,
    /// Resources this block occupies (released on completion).
    pub footprint: BlockFootprint,
}

impl BlockState {
    /// Instantiates a block: builds its warps (with partial-warp masks) and
    /// zeroed shared memory. The warps first become ready at `ready_at`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: KernelId,
        block_linear: u32,
        dims: BlockDims,
        program: Arc<Program>,
        params: Arc<[u32]>,
        footprint: BlockFootprint,
        start_cycle: u64,
        ready_at: u64,
    ) -> Self {
        let threads = footprint.threads;
        let nwarps = footprint.warps as usize;
        let nregs = program.regs_per_thread();
        let warps: Vec<Warp> = (0..nwarps)
            .map(|w| Warp::new(w, Warp::initial_mask(w, threads), nregs, ready_at))
            .collect();
        let shared = vec![0u32; (footprint.shared_mem as usize).div_ceil(4)];
        Self {
            kernel,
            block_linear,
            dims,
            program,
            params,
            shared,
            warps,
            barrier_arrived: 0,
            warps_running: nwarps,
            start_cycle,
            footprint,
        }
    }

    /// True when every warp has finished.
    pub fn is_done(&self) -> bool {
        self.warps_running == 0
    }

    /// Releases all warps waiting at the barrier if every running warp has
    /// arrived. Returns `true` if the barrier fired.
    pub fn try_release_barrier(&mut self, now: u64, barrier_latency: u32) -> bool {
        if self.warps_running == 0 || self.barrier_arrived < self.warps_running {
            return false;
        }
        for w in &mut self.warps {
            if w.state == WarpState::AtBarrier {
                w.state = WarpState::Ready;
                w.ready_at = now + u64::from(barrier_latency);
            }
        }
        self.barrier_arrived = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::kernel::Dim3;

    fn mk_block(threads: u32) -> BlockState {
        let mut b = KernelBuilder::new("t");
        let _ = b.mov(0u32);
        let program = b.build().expect("valid").into_shared();
        let fp = BlockFootprint {
            threads,
            warps: threads.div_ceil(32),
            registers: threads,
            shared_mem: 64,
        };
        BlockState::new(
            KernelId(0),
            3,
            BlockDims {
                ctaid: (3, 0, 0),
                ntid: Dim3::x(threads),
                nctaid: Dim3::x(8),
            },
            program,
            Arc::from(vec![].into_boxed_slice()),
            fp,
            100,
            105,
        )
    }

    #[test]
    fn block_builds_partial_last_warp() {
        let b = mk_block(70);
        assert_eq!(b.warps.len(), 3);
        assert_eq!(b.warps[0].live, u32::MAX);
        assert_eq!(b.warps[2].live, 0b111111);
        assert_eq!(b.warps_running, 3);
        assert!(!b.is_done());
        assert_eq!(b.shared.len(), 16, "64 shared bytes = 16 words");
    }

    #[test]
    fn barrier_waits_for_all_running_warps() {
        let mut b = mk_block(64);
        b.warps[0].state = WarpState::AtBarrier;
        b.barrier_arrived = 1;
        assert!(!b.try_release_barrier(10, 2));
        b.warps[1].state = WarpState::AtBarrier;
        b.barrier_arrived = 2;
        assert!(b.try_release_barrier(10, 2));
        assert_eq!(b.warps[0].state, WarpState::Ready);
        assert_eq!(b.warps[0].ready_at, 12);
        assert_eq!(b.barrier_arrived, 0);
    }

    #[test]
    fn barrier_ignores_finished_warps() {
        let mut b = mk_block(64);
        b.warps[1].state = WarpState::Finished;
        b.warps_running = 1;
        b.warps[0].state = WarpState::AtBarrier;
        b.barrier_arrived = 1;
        assert!(b.try_release_barrier(5, 2));
    }

    #[test]
    fn tid_decomposition() {
        let d = BlockDims {
            ctaid: (0, 0, 0),
            ntid: Dim3::xy(8, 4),
            nctaid: Dim3::x(1),
        };
        assert_eq!(d.tid(0), (0, 0, 0));
        assert_eq!(d.tid(9), (1, 1, 0));
        assert_eq!(d.tid(31), (7, 3, 0));
    }
}
