//! The global kernel scheduler interface.
//!
//! The paper's core proposal is to make this component policy-controlled:
//! which SM receives each thread block, and when kernels may start. The
//! simulator invokes the installed [`KernelSchedulerPolicy`] whenever
//! scheduling state changes (kernel arrival, block completion); the policy
//! inspects a [`SchedulerView`] and commits block-to-SM assignments through
//! [`SchedulerView::try_assign`].
//!
//! [`DefaultScheduler`] models the undisclosed COTS behaviour the paper
//! baselines against: breadth-first, greedy, oldest-kernel-first, with no
//! diversity guarantees. SRRS and HALF live in the `higpu-core` crate.

use crate::kernel::{BlockFootprint, KernelId, LaunchAttrs};
use crate::sm::ResourceUsage;
use std::sync::Arc;

/// Immutable facts about one launched-and-unfinished kernel.
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    /// Kernel identifier (monotonic in launch order).
    pub id: KernelId,
    /// Scheduling attributes from the launch (shared, so building a
    /// snapshot every scheduling round stays allocation-free).
    pub attrs: Arc<LaunchAttrs>,
    /// Cycle the kernel became visible to the GPU front-end.
    pub arrival: u64,
    /// Total thread blocks in the grid.
    pub blocks_total: u32,
    /// Blocks dispatched to SMs so far (including commitments made through
    /// the current view).
    pub blocks_issued: u32,
    /// Blocks that have completed execution.
    pub blocks_done: u32,
    /// Per-block resource footprint.
    pub footprint: BlockFootprint,
}

impl KernelSnapshot {
    /// Blocks not yet dispatched.
    pub fn pending(&self) -> u32 {
        self.blocks_total - self.blocks_issued
    }

    /// Blocks dispatched but not yet completed.
    pub fn running(&self) -> u32 {
        self.blocks_issued - self.blocks_done
    }

    /// True once every block has completed.
    pub fn is_finished(&self) -> bool {
        self.blocks_done == self.blocks_total
    }
}

/// Free capacity of one SM as seen by the policy (updated as the policy
/// commits assignments).
#[derive(Debug, Clone, Copy)]
pub struct SmSnapshot {
    /// Remaining capacity.
    pub free: ResourceUsage,
    /// Blocks currently resident (including commitments in this view).
    pub resident_blocks: u32,
    /// True when the SM is quarantined ([`crate::gpu::Gpu::quarantine_sm`]).
    /// A quarantined SM never fits any block, but policies that rotate over
    /// SMs (SRRS) need the distinction from "temporarily full": a full SM is
    /// waited on head-of-line, a quarantined one is skipped permanently.
    pub quarantined: bool,
}

impl SmSnapshot {
    /// True if a block with footprint `fp` fits in the remaining capacity.
    /// Always false on a quarantined SM.
    pub fn fits(&self, fp: &BlockFootprint) -> bool {
        !self.quarantined
            && fp.threads <= self.free.threads
            && fp.warps <= self.free.warps
            && fp.registers <= self.free.registers
            && fp.shared_mem <= self.free.shared_mem
            && self.free.blocks >= 1
    }
}

/// A block-to-SM assignment committed by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Kernel whose next pending block is dispatched.
    pub kernel: KernelId,
    /// Destination SM.
    pub sm: usize,
}

/// The scheduling state handed to a policy, with transactional assignment.
#[derive(Debug)]
pub struct SchedulerView {
    cycle: u64,
    kernels: Vec<KernelSnapshot>,
    sms: Vec<SmSnapshot>,
    assignments: Vec<Assignment>,
}

impl SchedulerView {
    /// Builds a view (called by the GPU each scheduling round).
    pub fn new(cycle: u64, kernels: Vec<KernelSnapshot>, sms: Vec<SmSnapshot>) -> Self {
        Self::from_parts(cycle, kernels, sms, Vec::new())
    }

    /// Builds a view over caller-provided buffers. `kernels` and `sms` are
    /// consumed as the view's *contents* (the caller fills them with this
    /// round's snapshots); `assignments` is an *output* buffer whose stale
    /// contents are cleared here and whose capacity is reused. The GPU's
    /// scheduling round passes warm scratch vectors (recovered with
    /// [`SchedulerView::into_parts`]) so steady-state rounds perform zero
    /// heap allocations.
    pub fn from_parts(
        cycle: u64,
        kernels: Vec<KernelSnapshot>,
        sms: Vec<SmSnapshot>,
        mut assignments: Vec<Assignment>,
    ) -> Self {
        assignments.clear();
        Self {
            cycle,
            kernels,
            sms,
            assignments,
        }
    }

    /// Consumes the view, yielding all three buffers (snapshots and the
    /// committed assignments) so their capacity can be reused next round.
    pub fn into_parts(self) -> (Vec<KernelSnapshot>, Vec<SmSnapshot>, Vec<Assignment>) {
        (self.kernels, self.sms, self.assignments)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of SMs.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// Kernels visible to the scheduler, in arrival order.
    pub fn kernels(&self) -> &[KernelSnapshot] {
        &self.kernels
    }

    /// SM capacity snapshots.
    pub fn sms(&self) -> &[SmSnapshot] {
        &self.sms
    }

    /// Blocks resident across all SMs (including commitments in this view).
    pub fn total_resident_blocks(&self) -> u32 {
        self.sms.iter().map(|s| s.resident_blocks).sum()
    }

    /// True when the GPU is completely idle (no resident blocks anywhere and
    /// nothing committed in this view) — the SRRS start condition.
    pub fn gpu_idle(&self) -> bool {
        self.total_resident_blocks() == 0
    }

    /// True if `kernel`'s next block fits on `sm` right now.
    pub fn fits(&self, sm: usize, kernel: KernelId) -> bool {
        let Some(k) = self.kernels.iter().find(|k| k.id == kernel) else {
            return false;
        };
        k.pending() > 0 && self.sms[sm].fits(&k.footprint)
    }

    /// Commits the next pending block of `kernel` to `sm`, updating the view
    /// capacity. Returns `false` (with no effect) if the kernel has no
    /// pending block or the block does not fit.
    pub fn try_assign(&mut self, sm: usize, kernel: KernelId) -> bool {
        let Some(k) = self.kernels.iter_mut().find(|k| k.id == kernel) else {
            return false;
        };
        if k.pending() == 0 || !self.sms[sm].fits(&k.footprint) {
            return false;
        }
        let fp = k.footprint;
        k.blocks_issued += 1;
        let s = &mut self.sms[sm];
        s.free.threads -= fp.threads;
        s.free.warps -= fp.warps;
        s.free.registers -= fp.registers;
        s.free.shared_mem -= fp.shared_mem;
        s.free.blocks -= 1;
        s.resident_blocks += 1;
        self.assignments.push(Assignment { kernel, sm });
        true
    }

    /// The assignments committed so far.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Consumes the view, yielding the committed assignments.
    pub fn into_assignments(self) -> Vec<Assignment> {
        self.assignments
    }
}

/// A global kernel-scheduling policy.
///
/// Implementations decide, at every scheduling round, which pending thread
/// blocks are dispatched to which SMs. They may keep internal state across
/// rounds (e.g. round-robin cursors, serialization gates) but must be
/// restartable via [`KernelSchedulerPolicy::reset`].
pub trait KernelSchedulerPolicy {
    /// Short policy name for traces and reports.
    fn name(&self) -> &str;

    /// Commits zero or more assignments on `view`.
    fn assign(&mut self, view: &mut SchedulerView);

    /// Clears internal state (called when the GPU is reset between
    /// experiments).
    fn reset(&mut self) {}

    /// Serializes any internal state evolved across scheduling rounds into
    /// `out` (device snapshots capture this so a restored run replays the
    /// identical dispatch decisions). Stateless policies — every policy in
    /// this workspace derives its decisions from the per-round view alone —
    /// keep the default no-op.
    fn save_state(&self, _out: &mut Vec<u64>) {}

    /// Restores state previously written by
    /// [`KernelSchedulerPolicy::save_state`]. The installed policy must be
    /// of the same kind that produced `state`.
    fn load_state(&mut self, _state: &[u64]) {}
}

/// The baseline COTS scheduler: breadth-first over SMs, oldest kernel first,
/// no diversity control. Mirrors the unconstrained GPGPU-Sim default the
/// paper compares against.
///
/// Placement is deterministic from SM 0, as in GPGPU-Sim's block issuer —
/// which is exactly why uncontrolled redundancy lacks diversity: two
/// identical kernels launched back-to-back receive the *same* block→SM
/// mapping, so a permanent SM fault can corrupt both copies identically.
#[derive(Debug, Default)]
pub struct DefaultScheduler {
    _private: (),
}

impl DefaultScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KernelSchedulerPolicy for DefaultScheduler {
    fn name(&self) -> &str {
        "default"
    }

    fn assign(&mut self, view: &mut SchedulerView) {
        let n = view.num_sms();
        if n == 0 {
            return;
        }
        // Breadth-first rounds: one block per SM per round, oldest kernel
        // with a fitting pending block first.
        loop {
            let mut any = false;
            for sm in 0..n {
                let kid = view
                    .kernels()
                    .iter()
                    .find(|k| k.pending() > 0 && view.sms()[sm].fits(&k.footprint))
                    .map(|k| k.id);
                if let Some(kid) = kid {
                    any |= view.try_assign(sm, kid);
                }
            }
            if !any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchAttrs;

    fn fp(threads: u32) -> BlockFootprint {
        BlockFootprint {
            threads,
            warps: threads.div_ceil(32),
            registers: threads,
            shared_mem: 0,
        }
    }

    fn sm_snapshot(threads: u32, blocks: u32) -> SmSnapshot {
        SmSnapshot {
            free: ResourceUsage {
                threads,
                warps: threads.div_ceil(32).max(blocks * 8),
                registers: threads * 32,
                shared_mem: 48 * 1024,
                blocks,
            },
            resident_blocks: 0,
            quarantined: false,
        }
    }

    fn kernel(id: u64, blocks: u32, threads: u32) -> KernelSnapshot {
        KernelSnapshot {
            id: KernelId(id),
            attrs: Arc::new(LaunchAttrs::default()),
            arrival: 0,
            blocks_total: blocks,
            blocks_issued: 0,
            blocks_done: 0,
            footprint: fp(threads),
        }
    }

    #[test]
    fn try_assign_updates_capacity_and_records() {
        let mut v = SchedulerView::new(
            0,
            vec![kernel(0, 2, 128)],
            vec![sm_snapshot(256, 8), sm_snapshot(256, 8)],
        );
        assert!(v.try_assign(0, KernelId(0)));
        assert!(v.try_assign(0, KernelId(0)));
        assert!(!v.try_assign(0, KernelId(0)), "no pending blocks left");
        assert_eq!(v.assignments().len(), 2);
        assert_eq!(v.sms()[0].free.threads, 0);
        assert_eq!(v.total_resident_blocks(), 2);
        assert!(!v.gpu_idle());
    }

    #[test]
    fn try_assign_rejects_overflow() {
        let mut v = SchedulerView::new(0, vec![kernel(0, 4, 200)], vec![sm_snapshot(256, 8)]);
        assert!(v.try_assign(0, KernelId(0)));
        assert!(!v.try_assign(0, KernelId(0)), "200+200 > 256 threads");
    }

    #[test]
    fn default_scheduler_spreads_breadth_first() {
        let mut v = SchedulerView::new(
            0,
            vec![kernel(0, 4, 128)],
            vec![sm_snapshot(256, 8), sm_snapshot(256, 8)],
        );
        let mut pol = DefaultScheduler::new();
        pol.assign(&mut v);
        let a = v.assignments();
        assert_eq!(a.len(), 4, "all blocks placed");
        let on0 = a.iter().filter(|x| x.sm == 0).count();
        let on1 = a.iter().filter(|x| x.sm == 1).count();
        assert_eq!(on0, 2);
        assert_eq!(on1, 2);
    }

    #[test]
    fn default_scheduler_runs_concurrent_kernels() {
        // Kernel 0 has one block; kernel 1 should fill the remaining space.
        let mut v = SchedulerView::new(
            0,
            vec![kernel(0, 1, 128), kernel(1, 3, 128)],
            vec![sm_snapshot(256, 8), sm_snapshot(256, 8)],
        );
        let mut pol = DefaultScheduler::new();
        pol.assign(&mut v);
        let a = v.assignments();
        assert_eq!(a.len(), 4);
        assert!(a.iter().any(|x| x.kernel == KernelId(1)));
    }

    #[test]
    fn idle_detection() {
        let v = SchedulerView::new(0, vec![], vec![sm_snapshot(256, 8)]);
        assert!(v.gpu_idle());
        let mut sm = sm_snapshot(256, 8);
        sm.resident_blocks = 1;
        let v = SchedulerView::new(0, vec![], vec![sm]);
        assert!(!v.gpu_idle());
    }

    #[test]
    fn quarantined_sm_never_fits_and_is_skipped() {
        let mut healthy = sm_snapshot(256, 8);
        healthy.quarantined = true;
        assert!(!healthy.fits(&fp(32)), "quarantined SM fits nothing");

        let mut bad = sm_snapshot(256, 8);
        bad.quarantined = true;
        let mut v = SchedulerView::new(0, vec![kernel(0, 4, 128)], vec![bad, sm_snapshot(256, 8)]);
        let mut pol = DefaultScheduler::new();
        pol.assign(&mut v);
        let a = v.assignments();
        assert_eq!(a.len(), 2, "only the healthy SM admits blocks");
        assert!(a.iter().all(|x| x.sm == 1));
    }

    #[test]
    fn snapshot_accounting() {
        let mut k = kernel(0, 10, 64);
        k.blocks_issued = 7;
        k.blocks_done = 3;
        assert_eq!(k.pending(), 3);
        assert_eq!(k.running(), 4);
        assert!(!k.is_finished());
        k.blocks_done = 10;
        k.blocks_issued = 10;
        assert!(k.is_finished());
    }
}
