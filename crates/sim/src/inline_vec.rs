//! A fixed-capacity inline vector for the execution hot path.
//!
//! A warp is 32 lanes wide, so no per-instruction collection (coalesced
//! transactions, atomic lane addresses) ever needs more than 32 elements;
//! storing them inline keeps [`crate::exec::step_warp`] free of heap
//! allocation.

/// Up to 32 `T`s stored inline. Equality compares only the initialized
/// prefix, never the unused capacity.
#[derive(Debug, Clone, Copy)]
pub struct InlineVec<T> {
    items: [T; 32],
    len: u8,
}

impl<T: Copy + Default> Default for InlineVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> InlineVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        Self {
            items: [T::default(); 32],
            len: 0,
        }
    }

    /// Appends one element.
    ///
    /// # Panics
    ///
    /// Panics past 32 entries — more than one element per lane indicates a
    /// simulator bug.
    pub fn push(&mut self, item: T) {
        self.items[usize::from(self.len)] = item;
        self.len += 1;
    }
}

impl<T> InlineVec<T> {
    /// Empties the vector without touching the backing storage, so a single
    /// buffer can be reused across instructions with no re-zeroing cost.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T> InlineVec<T> {
    /// The initialized elements.
    pub fn as_slice(&self) -> &[T] {
        &self.items[..usize::from(self.len)]
    }

    /// Number of initialized elements.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: PartialEq> PartialEq for InlineVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for InlineVec<T> {}

impl<'a, T> IntoIterator for &'a InlineVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_compares_by_content() {
        let mut a = InlineVec::<u32>::new();
        assert!(a.is_empty());
        a.push(7);
        assert_eq!(a.len(), 1);
        assert_eq!(a.as_slice(), &[7]);
        let mut b = InlineVec::<u32>::new();
        b.push(7);
        assert_eq!(a, b, "equality ignores unused capacity");
        b.push(9);
        assert_ne!(a, b);
    }

    #[test]
    fn fills_to_capacity() {
        let mut v = InlineVec::<u32>::new();
        for i in 0..32 {
            v.push(i);
        }
        assert_eq!(v.len(), 32);
        assert_eq!(v.as_slice()[31], 31);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut v = InlineVec::<u32>::new();
        for i in 0..33 {
            v.push(i);
        }
    }
}
