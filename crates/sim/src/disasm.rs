//! Disassembly: human-readable rendering of instructions and programs, for
//! debugging kernels and inspecting builder output.

use crate::isa::{FloatOp, IntOp, Op, SfuOp, Space, SpecialReg};
use crate::program::Program;
use std::fmt::Write;

fn int_op_mnemonic(op: IntOp) -> &'static str {
    match op {
        IntOp::Add => "iadd",
        IntOp::Sub => "isub",
        IntOp::Mul => "imul",
        IntOp::Div => "idiv",
        IntOp::Rem => "irem",
        IntOp::Min => "imin",
        IntOp::Max => "imax",
        IntOp::And => "and",
        IntOp::Or => "or",
        IntOp::Xor => "xor",
        IntOp::Shl => "shl",
        IntOp::Shr => "shr",
        IntOp::Sra => "sra",
    }
}

fn float_op_mnemonic(op: FloatOp) -> &'static str {
    match op {
        FloatOp::Add => "fadd",
        FloatOp::Sub => "fsub",
        FloatOp::Mul => "fmul",
        FloatOp::Div => "fdiv",
        FloatOp::Min => "fmin",
        FloatOp::Max => "fmax",
    }
}

fn sfu_op_mnemonic(op: SfuOp) -> &'static str {
    match op {
        SfuOp::Sqrt => "sqrt",
        SfuOp::Exp => "exp",
        SfuOp::Log => "log",
        SfuOp::Rcp => "rcp",
        SfuOp::Sin => "sin",
        SfuOp::Cos => "cos",
        SfuOp::Abs => "abs",
        SfuOp::Neg => "neg",
        SfuOp::Floor => "floor",
    }
}

fn special_name(s: SpecialReg) -> &'static str {
    match s {
        SpecialReg::TidX => "tid.x",
        SpecialReg::TidY => "tid.y",
        SpecialReg::TidZ => "tid.z",
        SpecialReg::CtaidX => "ctaid.x",
        SpecialReg::CtaidY => "ctaid.y",
        SpecialReg::CtaidZ => "ctaid.z",
        SpecialReg::NtidX => "ntid.x",
        SpecialReg::NtidY => "ntid.y",
        SpecialReg::NtidZ => "ntid.z",
        SpecialReg::NctaidX => "nctaid.x",
        SpecialReg::NctaidY => "nctaid.y",
        SpecialReg::NctaidZ => "nctaid.z",
        SpecialReg::LaneId => "laneid",
        SpecialReg::SmId => "smid",
    }
}

fn space_suffix(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

/// Renders one instruction as assembly-like text.
pub fn disassemble_op(op: &Op) -> String {
    match *op {
        Op::Mov { d, a } => format!("mov {d}, {a}"),
        Op::Special { d, s } => format!("mov {d}, %{}", special_name(s)),
        Op::Param { d, idx } => format!("ld.param {d}, [{idx}]"),
        Op::IAlu { op, d, a, b } => format!("{} {d}, {a}, {b}", int_op_mnemonic(op)),
        Op::IMad { d, a, b, c } => format!("imad {d}, {a}, {b}, {c}"),
        Op::FAlu { op, d, a, b } => format!("{} {d}, {a}, {b}", float_op_mnemonic(op)),
        Op::FFma { d, a, b, c } => format!("ffma {d}, {a}, {b}, {c}"),
        Op::FSfu { op, d, a } => format!("{} {d}, {a}", sfu_op_mnemonic(op)),
        Op::I2F { d, a } => format!("i2f {d}, {a}"),
        Op::F2I { d, a } => format!("f2i {d}, {a}"),
        Op::ISetp {
            p,
            cmp,
            a,
            b,
            unsigned,
        } => format!(
            "isetp.{cmp}{} {p}, {a}, {b}",
            if unsigned { ".u32" } else { "" }
        ),
        Op::FSetp { p, cmp, a, b } => format!("fsetp.{cmp} {p}, {a}, {b}"),
        Op::Selp { d, a, b, p } => format!("selp {d}, {a}, {b}, {p}"),
        Op::Ld {
            space,
            d,
            addr,
            offset,
        } => format!("ld.{} {d}, [{addr}{offset:+}]", space_suffix(space)),
        Op::St {
            space,
            addr,
            offset,
            v,
        } => format!("st.{} [{addr}{offset:+}], {v}", space_suffix(space)),
        Op::AtomAdd { d, addr, offset, v } => {
            format!("atom.add {d}, [{addr}{offset:+}], {v}")
        }
        Op::AtomAddF { d, addr, offset, v } => {
            format!("atom.add.f32 {d}, [{addr}{offset:+}], {v}")
        }
        Op::Bra { target } => format!("bra L{target}"),
        Op::BraCond {
            p,
            negate,
            target,
            reconv,
        } => format!(
            "@{}{p} bra L{target} (reconv L{reconv})",
            if negate { "!" } else { "" }
        ),
        Op::Bar => "bar.sync".to_string(),
        Op::Exit => "exit".to_string(),
        Op::Nop => "nop".to_string(),
    }
}

/// Renders a whole program as an assembly listing with PC labels.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} — {} instructions, {} registers/thread",
        program.name(),
        program.len(),
        program.regs_per_thread()
    );
    for (pc, op) in program.instrs().iter().enumerate() {
        let _ = writeln!(out, "L{pc:<4} {}", disassemble_op(op));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::isa::CmpOp;

    #[test]
    fn listing_covers_every_instruction() {
        let mut b = KernelBuilder::new("demo");
        let base = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(base, i);
        let v = b.ldg(a, 0);
        let f = b.i2f(v);
        let s = b.fsqrt(f);
        let p = b.fsetp(CmpOp::Gt, s, 1.0f32);
        let sel = b.selp(p, 1u32, 0u32);
        b.stg(a, 4, sel);
        b.bar();
        let prog = b.build().expect("valid");
        let text = disassemble(&prog);
        assert!(text.contains("// demo"));
        assert!(text.contains("ld.param"));
        assert!(text.contains("%tid.x"));
        assert!(text.contains("ld.global"));
        assert!(text.contains("sqrt"));
        assert!(text.contains("fsetp.gt"));
        assert!(text.contains("selp"));
        assert!(text.contains("st.global"));
        assert!(text.contains("bar.sync"));
        assert!(text.contains("exit"));
        assert_eq!(
            text.lines().count(),
            prog.len() + 1,
            "one line per op + header"
        );
    }

    #[test]
    fn branches_render_targets_and_reconvergence() {
        let mut b = KernelBuilder::new("br");
        let x = b.mov(1u32);
        let p = b.isetp(CmpOp::Gt, x, 0u32);
        b.if_else(p, |b| b.exit(), |b| b.bar());
        let prog = b.build().expect("valid");
        let text = disassemble(&prog);
        assert!(text.contains("@!p0 bra"));
        assert!(text.contains("reconv"));
    }

    #[test]
    fn offsets_are_signed() {
        let mut b = KernelBuilder::new("off");
        let base = b.param(0);
        let _ = b.ldg(base, -4);
        let prog = b.build().expect("valid");
        assert!(disassemble(&prog).contains("[r0-4]"));
    }
}
