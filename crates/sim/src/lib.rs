//! # higpu-sim — a cycle-level SIMT GPU simulator
//!
//! This crate is the hardware substrate of the `higpu` project, a Rust
//! reproduction of *High-Integrity GPU Designs for Critical Real-Time
//! Automotive Systems* (DATE 2019). It models a GPGPU-Sim-class GPU:
//!
//! * 32-wide warps executing a SASS-like ISA ([`isa`]) with a PDOM
//!   divergence stack, barriers and global atomics;
//! * streaming multiprocessors ([`sm`]) with occupancy-limited block
//!   residency (threads / warps / registers / shared memory / block slots)
//!   and greedy-then-oldest warp scheduling;
//! * a memory hierarchy ([`mem`]) with access coalescing, per-SM L1s, a
//!   shared L2 and bandwidth-limited DRAM channels;
//! * a **pluggable global kernel scheduler** ([`scheduler`]) — the component
//!   the paper modifies to obtain diverse redundant execution; and
//! * fault-injection hooks ([`fault`]) at computation results and block
//!   assignment, the paper's two corruption points of interest.
//!
//! Kernels are written with the structured [`builder::KernelBuilder`], which
//! guarantees well-formed divergence, and launched on a [`gpu::Gpu`] that
//! records an [`trace::ExecutionTrace`] — the evidence consumed by the
//! diversity verifier in `higpu-core`.
//!
//! # Examples
//!
//! ```
//! use higpu_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = Gpu::new(GpuConfig::paper_6sm());
//! let data = gpu.alloc_words(256)?;
//! gpu.write_f32(data, &vec![1.0; 256]);
//!
//! let mut b = KernelBuilder::new("scale");
//! let base = b.param(0);
//! let i = b.global_tid_x();
//! let addr = b.addr_w(base, i);
//! let v = b.ldg(addr, 0);
//! let scaled = b.fmul(v, 2.5f32);
//! b.stg(addr, 0, scaled);
//! let prog = b.build()?.into_shared();
//!
//! gpu.launch(KernelLaunch::new(
//!     prog,
//!     LaunchConfig::new(8u32, 32u32).param_u32(data.0),
//! ))?;
//! gpu.run_to_idle()?;
//! assert_eq!(gpu.read_f32(data, 1)[0], 2.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod builder;
pub mod config;
pub mod decode;
pub mod disasm;
pub mod exec;
pub mod fault;
pub mod gpu;
pub mod inline_vec;
pub mod isa;
pub mod kernel;
pub mod mem;
pub mod partition;
pub mod program;
pub mod scheduler;
pub mod sm;
pub mod stats;
pub mod timeq;
pub mod trace;
pub mod warp;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::builder::KernelBuilder;
    pub use crate::config::{CoreKind, GpuConfig};
    pub use crate::gpu::{DevPtr, Gpu, SimError};
    pub use crate::isa::CmpOp;
    pub use crate::kernel::{
        Dim3, KernelId, KernelLaunch, LaunchAttrs, LaunchConfig, RedundantTag, SmPartition,
    };
    pub use crate::program::Program;
    pub use crate::scheduler::{DefaultScheduler, KernelSchedulerPolicy, SchedulerView};
    pub use crate::trace::{BlockRecord, ExecutionTrace, KernelRecord};
}
