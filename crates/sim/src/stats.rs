//! Aggregate simulation statistics.

use crate::mem::system::MemoryStats;
use crate::sm::SmStats;
use crate::timeq::TimeQStats;

/// Counters accumulated over a simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Last simulated cycle.
    pub cycles: u64,
    /// Dynamic warp instructions issued across all SMs.
    pub instructions: u64,
    /// Per-SM counters.
    pub per_sm: Vec<SmStats>,
    /// Memory hierarchy counters.
    pub memory: MemoryStats,
    /// Out-of-bounds accesses observed (0 for correct, fault-free runs).
    pub oob_accesses: u64,
    /// Kernels completed.
    pub kernels_completed: u64,
    /// Thread blocks completed.
    pub blocks_completed: u64,
    /// Wake-queue routing diagnostics of the event core's time wheel
    /// (all-zero under [`crate::config::CoreKind::Stepping`] and on flat
    /// event-core devices, which never touch the device wake queue).
    pub timeq: TimeQStats,
}

/// Architectural equality only: `timeq` is deliberately excluded — wheel
/// vs. heap routing is a core *implementation* diagnostic, and the
/// cross-core and snapshot fences compare stats across cores/run shapes
/// that legitimately route differently while agreeing architecturally.
impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.instructions == other.instructions
            && self.per_sm == other.per_sm
            && self.memory == other.memory
            && self.oob_accesses == other.oob_accesses
            && self.kernels_completed == other.kernels_completed
            && self.blocks_completed == other.blocks_completed
    }
}

impl SimStats {
    /// Fraction of SM-cycles spent issuing, averaged over SMs; 0 when no
    /// cycles have elapsed.
    pub fn sm_utilization(&self) -> f64 {
        if self.cycles == 0 || self.per_sm.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.per_sm.iter().map(|s| s.busy_cycles).sum();
        busy as f64 / (self.cycles as f64 * self.per_sm.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_empty() {
        let s = SimStats::default();
        assert_eq!(s.sm_utilization(), 0.0);
    }

    #[test]
    fn utilization_averages_over_sms() {
        let s = SimStats {
            cycles: 100,
            per_sm: vec![
                SmStats {
                    busy_cycles: 50,
                    ..Default::default()
                },
                SmStats {
                    busy_cycles: 100,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((s.sm_utilization() - 0.75).abs() < 1e-12);
    }
}
