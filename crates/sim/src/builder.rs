//! Structured kernel assembler.
//!
//! [`KernelBuilder`] emits ISA instructions while guaranteeing that divergent
//! control flow is well-formed: every conditional branch carries its
//! reconvergence PC (the immediate post-dominator), which the SIMT divergence
//! stack relies on. High-level constructs (`if_`, `if_else`, `while_`,
//! `for_range`) mirror the CUDA source structure of the original kernels.
//!
//! # Examples
//!
//! A SAXPY kernel (`y[i] = a*x[i] + y[i]` for `i < n`):
//!
//! ```
//! use higpu_sim::builder::KernelBuilder;
//! use higpu_sim::isa::CmpOp;
//!
//! let mut b = KernelBuilder::new("saxpy");
//! let x = b.param(0); // buffer address of x
//! let y = b.param(1); // buffer address of y
//! let n = b.param(2);
//! let a = b.param(3); // f32 bits
//! let i = b.global_tid_x();
//! let in_range = b.isetp(CmpOp::Lt, i, n);
//! b.if_(in_range, |b| {
//!     let off = b.ishl(i, 2u32);
//!     let xa = b.iadd(x, off);
//!     let ya = b.iadd(y, off);
//!     let xv = b.ldg(xa, 0);
//!     let yv = b.ldg(ya, 0);
//!     let r = b.ffma(xv, a, yv);
//!     b.stg(ya, 0, r);
//! });
//! let prog = b.build().expect("valid program");
//! assert!(prog.regs_per_thread() > 0);
//! ```

use crate::isa::{CmpOp, FloatOp, IntOp, Op, Pred, Reg, SfuOp, Space, SpecialReg, Src};
use crate::program::{Program, ProgramError};

/// Incremental, structured builder for kernel [`Program`]s.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Op>,
    next_reg: u16,
    next_pred: u8,
    extra_regs: u16,
}

impl KernelBuilder {
    /// Creates a builder for a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            extra_regs: 0,
        }
    }

    /// Allocates a fresh general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if more than 4096 registers are allocated (a builder bug, not a
    /// hardware limit — hardware limits are enforced at launch time through
    /// occupancy).
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 4096, "register allocator exhausted");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 predicates are live; reuse predicates across
    /// disjoint regions instead.
    pub fn pred(&mut self) -> Pred {
        assert!(self.next_pred < 8, "predicate allocator exhausted");
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Releases the most recently allocated predicate(s) back to the pool so
    /// that deeply sequential code does not exhaust the 8 predicate slots.
    pub fn release_preds(&mut self, count: u8) {
        self.next_pred = self.next_pred.saturating_sub(count);
    }

    /// Declares additional (unused) registers to model the register pressure
    /// of the original CUDA kernel, which affects SM occupancy.
    pub fn extra_regs(&mut self, n: u16) -> &mut Self {
        self.extra_regs = n;
        self
    }

    fn emit(&mut self, op: Op) -> usize {
        self.instrs.push(op);
        self.instrs.len() - 1
    }

    fn pc(&self) -> u32 {
        self.instrs.len() as u32
    }

    // ---- moves, specials, params ------------------------------------------

    /// `d = a`.
    pub fn mov_to(&mut self, d: Reg, a: impl Into<Src>) {
        let a = a.into();
        self.emit(Op::Mov { d, a });
    }

    /// Fresh register holding the immediate/register `a`.
    pub fn mov(&mut self, a: impl Into<Src>) -> Reg {
        let d = self.reg();
        self.mov_to(d, a);
        d
    }

    /// Fresh register holding the hardware value `s`.
    pub fn special(&mut self, s: SpecialReg) -> Reg {
        let d = self.reg();
        self.emit(Op::Special { d, s });
        d
    }

    /// Fresh register holding kernel parameter word `idx`.
    pub fn param(&mut self, idx: u8) -> Reg {
        let d = self.reg();
        self.emit(Op::Param { d, idx });
        d
    }

    /// Fresh register holding the global x thread index
    /// `ctaid.x * ntid.x + tid.x`.
    pub fn global_tid_x(&mut self) -> Reg {
        let ctaid = self.special(SpecialReg::CtaidX);
        let ntid = self.special(SpecialReg::NtidX);
        let tid = self.special(SpecialReg::TidX);
        let d = self.reg();
        self.emit(Op::IMad {
            d,
            a: ctaid,
            b: Src::Reg(ntid),
            c: Src::Reg(tid),
        });
        d
    }

    /// Fresh register holding the global y thread index
    /// `ctaid.y * ntid.y + tid.y`.
    pub fn global_tid_y(&mut self) -> Reg {
        let ctaid = self.special(SpecialReg::CtaidY);
        let ntid = self.special(SpecialReg::NtidY);
        let tid = self.special(SpecialReg::TidY);
        let d = self.reg();
        self.emit(Op::IMad {
            d,
            a: ctaid,
            b: Src::Reg(ntid),
            c: Src::Reg(tid),
        });
        d
    }

    // ---- integer ALU -------------------------------------------------------

    fn ialu_to(&mut self, op: IntOp, d: Reg, a: Reg, b: impl Into<Src>) {
        let b = b.into();
        self.emit(Op::IAlu { op, d, a, b });
    }

    fn ialu(&mut self, op: IntOp, a: Reg, b: impl Into<Src>) -> Reg {
        let d = self.reg();
        self.ialu_to(op, d, a, b);
        d
    }

    /// `d = a + b` into a fresh register.
    pub fn iadd(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Add, a, b)
    }

    /// `d = a + b` into `d`.
    pub fn iadd_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>) {
        self.ialu_to(IntOp::Add, d, a, b);
    }

    /// `d = a - b` into a fresh register.
    pub fn isub(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Sub, a, b)
    }

    /// `d = a - b` into `d`.
    pub fn isub_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>) {
        self.ialu_to(IntOp::Sub, d, a, b);
    }

    /// `d = a * b` into a fresh register.
    pub fn imul(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Mul, a, b)
    }

    /// `d = a * b` into `d`.
    pub fn imul_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>) {
        self.ialu_to(IntOp::Mul, d, a, b);
    }

    /// `d = a / b` (signed) into a fresh register.
    pub fn idiv(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Div, a, b)
    }

    /// `d = a % b` (signed) into a fresh register.
    pub fn irem(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Rem, a, b)
    }

    /// `d = min(a, b)` (signed) into a fresh register.
    pub fn imin(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Min, a, b)
    }

    /// `d = max(a, b)` (signed) into a fresh register.
    pub fn imax(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Max, a, b)
    }

    /// `d = a & b` into a fresh register.
    pub fn iand(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::And, a, b)
    }

    /// `d = a | b` into a fresh register.
    pub fn ior(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Or, a, b)
    }

    /// `d = a ^ b` into a fresh register.
    pub fn ixor(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Xor, a, b)
    }

    /// `d = a << b` into a fresh register.
    pub fn ishl(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Shl, a, b)
    }

    /// `d = a >> b` (logical) into a fresh register.
    pub fn ishr(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.ialu(IntOp::Shr, a, b)
    }

    /// `d = a * b + c` into a fresh register.
    pub fn imad(&mut self, a: Reg, b: impl Into<Src>, c: impl Into<Src>) -> Reg {
        let d = self.reg();
        let b = b.into();
        let c = c.into();
        self.emit(Op::IMad { d, a, b, c });
        d
    }

    /// `d = a * b + c` into `d`.
    pub fn imad_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>, c: impl Into<Src>) {
        let b = b.into();
        let c = c.into();
        self.emit(Op::IMad { d, a, b, c });
    }

    /// Byte address `base + index * 4` for word-indexed buffers, into a fresh
    /// register.
    pub fn addr_w(&mut self, base: Reg, index: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::IMad {
            d,
            a: index,
            b: Src::Imm(4),
            c: Src::Reg(base),
        });
        d
    }

    // ---- float ALU ---------------------------------------------------------

    fn falu(&mut self, op: FloatOp, a: Reg, b: impl Into<Src>) -> Reg {
        let d = self.reg();
        let b = b.into();
        self.emit(Op::FAlu { op, d, a, b });
        d
    }

    /// `d = a + b` (f32) into a fresh register.
    pub fn fadd(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Add, a, b)
    }

    /// `d = a + b` (f32) into `d`.
    pub fn fadd_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>) {
        let b = b.into();
        self.emit(Op::FAlu {
            op: FloatOp::Add,
            d,
            a,
            b,
        });
    }

    /// `d = a - b` (f32) into a fresh register.
    pub fn fsub(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Sub, a, b)
    }

    /// `d = a * b` (f32) into a fresh register.
    pub fn fmul(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Mul, a, b)
    }

    /// `d = a * b` (f32) into `d`.
    pub fn fmul_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>) {
        let b = b.into();
        self.emit(Op::FAlu {
            op: FloatOp::Mul,
            d,
            a,
            b,
        });
    }

    /// `d = a / b` (f32) into a fresh register.
    pub fn fdiv(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Div, a, b)
    }

    /// `d = min(a, b)` (f32) into a fresh register.
    pub fn fmin(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Min, a, b)
    }

    /// `d = max(a, b)` (f32) into a fresh register.
    pub fn fmax(&mut self, a: Reg, b: impl Into<Src>) -> Reg {
        self.falu(FloatOp::Max, a, b)
    }

    /// `d = a * b + c` (fused, f32) into a fresh register.
    pub fn ffma(&mut self, a: Reg, b: impl Into<Src>, c: impl Into<Src>) -> Reg {
        let d = self.reg();
        let b = b.into();
        let c = c.into();
        self.emit(Op::FFma { d, a, b, c });
        d
    }

    /// `d = a * b + c` (fused, f32) into `d`.
    pub fn ffma_to(&mut self, d: Reg, a: Reg, b: impl Into<Src>, c: impl Into<Src>) {
        let b = b.into();
        let c = c.into();
        self.emit(Op::FFma { d, a, b, c });
    }

    fn sfu(&mut self, op: SfuOp, a: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::FSfu { op, d, a });
        d
    }

    /// `d = sqrt(a)` into a fresh register.
    pub fn fsqrt(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Sqrt, a)
    }

    /// `d = exp(a)` into a fresh register.
    pub fn fexp(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Exp, a)
    }

    /// `d = ln(a)` into a fresh register.
    pub fn flog(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Log, a)
    }

    /// `d = 1/a` into a fresh register.
    pub fn frcp(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Rcp, a)
    }

    /// `d = sin(a)` into a fresh register.
    pub fn fsin(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Sin, a)
    }

    /// `d = cos(a)` into a fresh register.
    pub fn fcos(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Cos, a)
    }

    /// `d = |a|` into a fresh register.
    pub fn fabs(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Abs, a)
    }

    /// `d = -a` into a fresh register.
    pub fn fneg(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Neg, a)
    }

    /// `d = floor(a)` into a fresh register.
    pub fn ffloor(&mut self, a: Reg) -> Reg {
        self.sfu(SfuOp::Floor, a)
    }

    /// `d = (f32)a` from a signed integer, into a fresh register.
    pub fn i2f(&mut self, a: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::I2F { d, a });
        d
    }

    /// `d = (i32)a` truncated from f32, into a fresh register.
    pub fn f2i(&mut self, a: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::F2I { d, a });
        d
    }

    // ---- predicates & select ----------------------------------------------

    /// Fresh predicate `p = a <cmp> b` (signed integers).
    pub fn isetp(&mut self, cmp: CmpOp, a: Reg, b: impl Into<Src>) -> Pred {
        let p = self.pred();
        let b = b.into();
        self.emit(Op::ISetp {
            p,
            cmp,
            a,
            b,
            unsigned: false,
        });
        p
    }

    /// Fresh predicate `p = a <cmp> b` (unsigned integers).
    pub fn isetp_u(&mut self, cmp: CmpOp, a: Reg, b: impl Into<Src>) -> Pred {
        let p = self.pred();
        let b = b.into();
        self.emit(Op::ISetp {
            p,
            cmp,
            a,
            b,
            unsigned: true,
        });
        p
    }

    /// Fresh predicate `p = a <cmp> b` (f32).
    pub fn fsetp(&mut self, cmp: CmpOp, a: Reg, b: impl Into<Src>) -> Pred {
        let p = self.pred();
        let b = b.into();
        self.emit(Op::FSetp { p, cmp, a, b });
        p
    }

    /// `d = p ? a : b` into a fresh register.
    pub fn selp(&mut self, p: Pred, a: impl Into<Src>, b: impl Into<Src>) -> Reg {
        let d = self.reg();
        let a = a.into();
        let b = b.into();
        self.emit(Op::Selp { d, a, b, p });
        d
    }

    // ---- memory ------------------------------------------------------------

    /// Global load `d = mem[addr + offset]` into a fresh register.
    pub fn ldg(&mut self, addr: Reg, offset: i32) -> Reg {
        let d = self.reg();
        self.emit(Op::Ld {
            space: Space::Global,
            d,
            addr,
            offset,
        });
        d
    }

    /// Global load into an existing register.
    pub fn ldg_to(&mut self, d: Reg, addr: Reg, offset: i32) {
        self.emit(Op::Ld {
            space: Space::Global,
            d,
            addr,
            offset,
        });
    }

    /// Global store `mem[addr + offset] = v`.
    pub fn stg(&mut self, addr: Reg, offset: i32, v: Reg) {
        self.emit(Op::St {
            space: Space::Global,
            addr,
            offset,
            v,
        });
    }

    /// Shared-memory load `d = shared[addr + offset]` into a fresh register.
    pub fn lds(&mut self, addr: Reg, offset: i32) -> Reg {
        let d = self.reg();
        self.emit(Op::Ld {
            space: Space::Shared,
            d,
            addr,
            offset,
        });
        d
    }

    /// Shared-memory store `shared[addr + offset] = v`.
    pub fn sts(&mut self, addr: Reg, offset: i32, v: Reg) {
        self.emit(Op::St {
            space: Space::Shared,
            addr,
            offset,
            v,
        });
    }

    /// Atomic integer add to global memory; returns the old value in a fresh
    /// register.
    pub fn atom_add(&mut self, addr: Reg, offset: i32, v: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::AtomAdd { d, addr, offset, v });
        d
    }

    /// Atomic f32 add to global memory; returns the old value in a fresh
    /// register.
    pub fn atom_add_f(&mut self, addr: Reg, offset: i32, v: Reg) -> Reg {
        let d = self.reg();
        self.emit(Op::AtomAddF { d, addr, offset, v });
        d
    }

    // ---- control flow -------------------------------------------------------

    /// Block-wide barrier (`__syncthreads()`).
    pub fn bar(&mut self) {
        self.emit(Op::Bar);
    }

    /// Terminates the executing lanes.
    pub fn exit(&mut self) {
        self.emit(Op::Exit);
    }

    /// Structured `if (p) { then }`.
    pub fn if_(&mut self, p: Pred, then: impl FnOnce(&mut Self)) {
        let br = self.emit(Op::BraCond {
            p,
            negate: true,
            target: 0,
            reconv: 0,
        });
        then(self);
        let end = self.pc();
        if let Op::BraCond { target, reconv, .. } = &mut self.instrs[br] {
            *target = end;
            *reconv = end;
        }
    }

    /// Structured `if (!p) { then }`.
    pub fn if_not(&mut self, p: Pred, then: impl FnOnce(&mut Self)) {
        let br = self.emit(Op::BraCond {
            p,
            negate: false,
            target: 0,
            reconv: 0,
        });
        then(self);
        let end = self.pc();
        if let Op::BraCond { target, reconv, .. } = &mut self.instrs[br] {
            *target = end;
            *reconv = end;
        }
    }

    /// Structured `if (p) { then } else { els }`.
    pub fn if_else(&mut self, p: Pred, then: impl FnOnce(&mut Self), els: impl FnOnce(&mut Self)) {
        let br = self.emit(Op::BraCond {
            p,
            negate: true,
            target: 0,
            reconv: 0,
        });
        then(self);
        let jmp = self.emit(Op::Bra { target: 0 });
        let else_pc = self.pc();
        els(self);
        let end = self.pc();
        if let Op::BraCond { target, reconv, .. } = &mut self.instrs[br] {
            *target = else_pc;
            *reconv = end;
        }
        if let Op::Bra { target } = &mut self.instrs[jmp] {
            *target = end;
        }
    }

    /// Structured `while (cond) { body }`.
    ///
    /// `cond` emits the condition evaluation (executed every iteration) and
    /// returns the predicate that must hold for the loop to continue.
    pub fn while_(&mut self, cond: impl FnOnce(&mut Self) -> Pred, body: impl FnOnce(&mut Self)) {
        let top = self.pc();
        let p = cond(self);
        let br = self.emit(Op::BraCond {
            p,
            negate: true,
            target: 0,
            reconv: 0,
        });
        body(self);
        self.emit(Op::Bra { target: top });
        let end = self.pc();
        if let Op::BraCond { target, reconv, .. } = &mut self.instrs[br] {
            *target = end;
            *reconv = end;
        }
    }

    /// Counted loop `for (i = start; i < end; i += step) { body(i) }`.
    ///
    /// The loop variable is a fresh register passed to `body`. `end` and
    /// `step` may be immediates or registers. The predicate used for the loop
    /// condition is released when the loop closes.
    ///
    /// # Panics
    ///
    /// Panics if `step` is an immediate zero.
    pub fn for_range(
        &mut self,
        start: impl Into<Src>,
        end: impl Into<Src>,
        step: impl Into<Src>,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let end = end.into();
        let step = step.into();
        if let Src::Imm(0) = step {
            panic!("for_range step must be non-zero");
        }
        let i = self.mov(start);
        let preds_before = self.next_pred;
        self.while_(
            |b| b.isetp(CmpOp::Lt, i, end),
            |b| {
                body(b, i);
                b.iadd_to(i, i, step);
            },
        );
        self.next_pred = preds_before;
    }

    /// Finalizes the kernel: appends a trailing [`Op::Exit`] and validates.
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`] from validation (only reachable through
    /// builder misuse, e.g. zero instructions emitted).
    pub fn build(mut self) -> Result<Program, ProgramError> {
        self.emit(Op::Exit);
        let regs = self.next_reg.saturating_add(self.extra_regs).max(1);
        Program::new(self.name, self.instrs, regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_appends_exit_and_counts_regs() {
        let mut b = KernelBuilder::new("k");
        let r = b.mov(7u32);
        let _ = b.iadd(r, 1u32);
        let p = b.build().expect("valid");
        assert!(matches!(p.instrs().last(), Some(Op::Exit)));
        assert_eq!(p.regs_per_thread(), 2);
    }

    #[test]
    fn extra_regs_inflate_footprint() {
        let mut b = KernelBuilder::new("k");
        b.extra_regs(30);
        let _ = b.mov(0u32);
        let p = b.build().expect("valid");
        assert_eq!(p.regs_per_thread(), 31);
    }

    #[test]
    fn if_patches_target_and_reconv() {
        let mut b = KernelBuilder::new("k");
        let r = b.mov(1u32);
        let p = b.isetp(CmpOp::Gt, r, 0u32);
        b.if_(p, |b| {
            let _ = b.iadd(r, 1u32);
        });
        let prog = b.build().expect("valid");
        let br = prog
            .instrs()
            .iter()
            .find_map(|op| match *op {
                Op::BraCond { target, reconv, .. } => Some((target, reconv)),
                _ => None,
            })
            .expect("has branch");
        assert_eq!(br.0, br.1, "if_ reconverges at its own target");
        assert_eq!(br.0 as usize, prog.len() - 1, "targets the trailing exit");
    }

    #[test]
    fn if_else_reconverges_after_both_arms() {
        let mut b = KernelBuilder::new("k");
        let r = b.mov(1u32);
        let p = b.isetp(CmpOp::Gt, r, 0u32);
        b.if_else(
            p,
            |b| {
                let _ = b.iadd(r, 1u32);
            },
            |b| {
                let _ = b.iadd(r, 2u32);
            },
        );
        let prog = b.build().expect("valid");
        let (target, reconv) = prog
            .instrs()
            .iter()
            .find_map(|op| match *op {
                Op::BraCond { target, reconv, .. } => Some((target, reconv)),
                _ => None,
            })
            .expect("has branch");
        assert!(target < reconv, "else arm starts before the join point");
    }

    #[test]
    fn while_branches_back_to_condition() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(0u32);
        b.while_(
            |b| b.isetp(CmpOp::Lt, i, 4u32),
            |b| {
                b.iadd_to(i, i, 1u32);
            },
        );
        let prog = b.build().expect("valid");
        let back = prog
            .instrs()
            .iter()
            .filter_map(|op| match *op {
                Op::Bra { target } => Some(target),
                _ => None,
            })
            .next()
            .expect("has back branch");
        assert_eq!(back, 1, "loops back to the condition evaluation");
    }

    #[test]
    fn for_range_releases_predicates() {
        let mut b = KernelBuilder::new("k");
        for _ in 0..20 {
            b.for_range(0u32, 3u32, 1u32, |b, i| {
                let _ = b.iadd(i, 1u32);
            });
        }
        // 20 sequential loops but only 1 predicate slot ever live.
        let prog = b.build().expect("valid");
        assert!(prog.len() > 20);
    }

    #[test]
    #[should_panic(expected = "step must be non-zero")]
    fn for_range_rejects_zero_step() {
        let mut b = KernelBuilder::new("k");
        b.for_range(0u32, 3u32, 0u32, |_, _| {});
    }
}
