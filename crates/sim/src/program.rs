//! A compiled kernel program: a flat instruction list with resolved branch
//! targets and a declared register footprint.

use crate::decode::{decode, DOp};
use crate::isa::Op;
use std::fmt;
use std::sync::Arc;

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch target or reconvergence point lies outside the program.
    BranchOutOfRange {
        /// PC of the offending instruction.
        pc: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// The program is empty.
    Empty,
    /// The program does not end in a control-flow-terminating instruction.
    MissingExit,
    /// More registers are referenced than declared.
    RegisterOverflow {
        /// Highest referenced register index.
        used: u16,
        /// Declared register count.
        declared: u16,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::MissingExit => write!(f, "program does not terminate with exit"),
            ProgramError::RegisterOverflow { used, declared } => {
                write!(
                    f,
                    "register r{used} referenced but only {declared} declared"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// An immutable, validated kernel program.
///
/// Programs are cheap to share across launches via [`Program::into_shared`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    instrs: Vec<Op>,
    /// Pre-decoded mirror of `instrs` (see [`crate::decode`]): built once at
    /// construction so the interpreter never re-resolves operands per dynamic
    /// instruction. Derived state — always `decode(&instrs)`.
    decoded: Vec<DOp>,
    regs_per_thread: u16,
}

impl Program {
    /// Creates a program from raw instructions.
    ///
    /// `regs_per_thread` is the register footprint used for SM occupancy; it
    /// must cover every register the instructions reference (real compilers
    /// may allocate more than strictly needed, which callers can model by
    /// passing a larger value).
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if validation fails; see [`Program::validate`].
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Op>,
        regs_per_thread: u16,
    ) -> Result<Self, ProgramError> {
        let decoded = decode(&instrs);
        let p = Self {
            name: name.into(),
            instrs,
            decoded,
            regs_per_thread,
        };
        p.validate()?;
        Ok(p)
    }

    /// Checks branch targets, termination and the register declaration.
    ///
    /// # Errors
    ///
    /// * [`ProgramError::Empty`] for an empty instruction list.
    /// * [`ProgramError::BranchOutOfRange`] if any branch or reconvergence PC
    ///   is ≥ the program length.
    /// * [`ProgramError::MissingExit`] if no [`Op::Exit`] exists.
    /// * [`ProgramError::RegisterOverflow`] if an instruction references a
    ///   register ≥ `regs_per_thread`.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = self.instrs.len() as u32;
        let mut has_exit = false;
        for (pc, op) in self.instrs.iter().enumerate() {
            match *op {
                Op::Bra { target } if target >= len => {
                    return Err(ProgramError::BranchOutOfRange { pc, target });
                }
                Op::BraCond { target, reconv, .. } => {
                    if target >= len {
                        return Err(ProgramError::BranchOutOfRange { pc, target });
                    }
                    if reconv > len {
                        return Err(ProgramError::BranchOutOfRange { pc, target: reconv });
                    }
                }
                Op::Exit => has_exit = true,
                _ => {}
            }
            if let Some(used) = op.max_reg() {
                if used >= self.regs_per_thread {
                    return Err(ProgramError::RegisterOverflow {
                        used,
                        declared: self.regs_per_thread,
                    });
                }
            }
        }
        if !has_exit {
            return Err(ProgramError::MissingExit);
        }
        Ok(())
    }

    /// The program name (for traces and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Op] {
        &self.instrs
    }

    /// The pre-decoded instruction stream the interpreter executes
    /// (index-aligned with [`Program::instrs`]).
    pub fn decoded(&self) -> &[DOp] {
        &self.decoded
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program holds no instructions (never true for validated
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Per-thread register footprint used for occupancy computations.
    pub fn regs_per_thread(&self) -> u16 {
        self.regs_per_thread
    }

    /// Wraps the program in an [`Arc`] for sharing across launches.
    pub fn into_shared(self) -> Arc<Program> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Pred, Reg, Src};

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new("k", vec![], 1), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_missing_exit() {
        let r = Program::new("k", vec![Op::Nop], 1);
        assert_eq!(r, Err(ProgramError::MissingExit));
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let r = Program::new("k", vec![Op::Bra { target: 9 }, Op::Exit], 1);
        assert!(matches!(r, Err(ProgramError::BranchOutOfRange { .. })));
        let r = Program::new(
            "k",
            vec![
                Op::BraCond {
                    p: Pred(0),
                    negate: false,
                    target: 1,
                    reconv: 77,
                },
                Op::Exit,
            ],
            1,
        );
        assert!(matches!(r, Err(ProgramError::BranchOutOfRange { .. })));
    }

    #[test]
    fn rejects_register_overflow() {
        let r = Program::new(
            "k",
            vec![
                Op::Mov {
                    d: Reg(7),
                    a: Src::Imm(0),
                },
                Op::Exit,
            ],
            4,
        );
        assert_eq!(
            r,
            Err(ProgramError::RegisterOverflow {
                used: 7,
                declared: 4
            })
        );
    }

    #[test]
    fn accepts_minimal_program() {
        let p = Program::new("k", vec![Op::Exit], 0).expect("valid");
        assert_eq!(p.len(), 1);
        assert_eq!(p.name(), "k");
        assert!(!p.is_empty());
    }
}
