//! SM-partition reservations: disjoint, contiguous SM ranges a host-side
//! frame executor claims for concurrently executing work.
//!
//! The paper's isolation primitive for co-scheduled critical kernels is a
//! static SM partition (HALF; generalized by `SmSlice`). A *reservation*
//! lifts that idea to the frame level: a real-time host running independent
//! DAG branches of one frame concurrently reserves a disjoint SM range per
//! branch, launches the branch's redundant kernels confined to that range
//! (the [`crate::kernel::LaunchAttrs::reserve`] attribute, composing with
//! the existing `SmSlice`/`start_sm` diversity hints *inside* the range),
//! and releases the range when the branch delivers. Because ranges are
//! disjoint by construction, a branch that is cancelled mid-flight
//! ([`crate::gpu::Gpu::cancel_kernels`]) can never disturb a sibling
//! partition's clock-visible state.

use std::fmt;

/// A contiguous range of SM ids, `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmRange {
    /// First SM id of the range.
    pub start: usize,
    /// Number of SMs in the range (non-zero for any usable range).
    pub len: usize,
}

impl SmRange {
    /// The range covering a whole device of `num_sms` SMs.
    pub fn whole(num_sms: usize) -> Self {
        Self {
            start: 0,
            len: num_sms,
        }
    }

    /// The SM-id range as a standard range.
    pub fn range(self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }

    /// True if `sm` belongs to this range.
    pub fn contains(self, sm: usize) -> bool {
        self.range().contains(&sm)
    }

    /// True when this range lies inside a device with `num_sms` SMs and is
    /// non-empty.
    pub fn is_valid(self, num_sms: usize) -> bool {
        self.len > 0 && self.start + self.len <= num_sms
    }
}

impl fmt::Display for SmRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM[{}..{})", self.start, self.start + self.len)
    }
}

/// A claimed partition: the handle a frame executor holds while a branch
/// runs on the reserved SMs. Returned by [`SmPartitionTable::reserve`] and
/// consumed by [`SmPartitionTable::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmReservation {
    id: u32,
    range: SmRange,
}

impl SmReservation {
    /// The reserved SM range.
    pub fn range(&self) -> SmRange {
        self.range
    }
}

/// Book-keeping of disjoint SM reservations over one device.
///
/// First-fit over contiguous free runs; every claim is validated against
/// `num_sms`, and double-release / foreign handles are rejected — a wiring
/// bug in the frame executor must surface, not silently corrupt the
/// partition map.
#[derive(Debug)]
pub struct SmPartitionTable {
    /// `owner[sm]` = reservation id holding that SM, if any. Permanently
    /// blocked SMs (quarantined hardware) carry the [`BLOCKED`] sentinel.
    owner: Vec<Option<u32>>,
    next_id: u32,
}

/// Owner sentinel for an SM removed from service ([`SmPartitionTable::block_sm`]).
/// Reservation ids count up from 0, so the sentinel can never collide with a
/// handle and [`SmPartitionTable::release`] can never free a blocked SM.
const BLOCKED: u32 = u32::MAX;

impl SmPartitionTable {
    /// An empty table over a device with `num_sms` SMs.
    ///
    /// # Panics
    ///
    /// Panics on a zero-SM device (no partition could ever be reserved).
    pub fn new(num_sms: usize) -> Self {
        assert!(num_sms > 0, "partition table over a zero-SM device");
        Self {
            owner: vec![None; num_sms],
            next_id: 0,
        }
    }

    /// Number of SMs the table manages.
    pub fn num_sms(&self) -> usize {
        self.owner.len()
    }

    /// SMs not currently reserved (excludes blocked SMs).
    pub fn free_sms(&self) -> usize {
        self.owner.iter().filter(|o| o.is_none()).count()
    }

    /// Permanently removes one SM from the table: it is never part of any
    /// future reservation. The limp-home executor blocks every quarantined
    /// SM before carving frame partitions, so first-fit places branches
    /// around the dead hardware. Idempotent; blocking a currently reserved
    /// SM is a wiring bug (the executor quarantines only between frames,
    /// when all reservations are released).
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range or currently reserved by a live
    /// reservation.
    pub fn block_sm(&mut self, sm: usize) {
        assert!(sm < self.owner.len(), "blocking nonexistent SM {sm}");
        assert!(
            self.owner[sm].is_none_or(|id| id == BLOCKED),
            "blocking SM {sm} while it is reserved"
        );
        self.owner[sm] = Some(BLOCKED);
    }

    /// Length of the largest contiguous free run (the biggest partition
    /// [`SmPartitionTable::reserve`] could currently satisfy).
    pub fn largest_free_run(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        for o in &self.owner {
            if o.is_none() {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// Reserves the first (lowest-start) contiguous run of `sms` free SMs;
    /// `None` when no such run exists (the caller waits for a release).
    pub fn reserve(&mut self, sms: usize) -> Option<SmReservation> {
        if sms == 0 || sms > self.owner.len() {
            return None;
        }
        let mut start = 0;
        while start + sms <= self.owner.len() {
            match self.owner[start..start + sms]
                .iter()
                .rposition(Option::is_some)
            {
                // Skip past the last claimed SM inside the window.
                Some(claimed) => start += claimed + 1,
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    for o in &mut self.owner[start..start + sms] {
                        *o = Some(id);
                    }
                    return Some(SmReservation {
                        id,
                        range: SmRange { start, len: sms },
                    });
                }
            }
        }
        None
    }

    /// Releases a reservation previously handed out by this table.
    ///
    /// # Panics
    ///
    /// Panics on a handle this table does not currently hold (double
    /// release or a foreign table) — a frame-executor wiring bug.
    pub fn release(&mut self, reservation: SmReservation) {
        let r = reservation.range.range();
        assert!(
            reservation.range.is_valid(self.owner.len())
                && self.owner[r.clone()]
                    .iter()
                    .all(|o| *o == Some(reservation.id)),
            "released partition {} is not held by this table",
            reservation.range
        );
        for o in &mut self.owner[r] {
            *o = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_validate_and_contain() {
        let r = SmRange { start: 2, len: 3 };
        assert!(r.is_valid(6));
        assert!(!r.is_valid(4), "2+3 > 4");
        assert!(!SmRange { start: 0, len: 0 }.is_valid(6), "empty");
        assert!(r.contains(2) && r.contains(4) && !r.contains(5));
        assert_eq!(SmRange::whole(6).range(), 0..6);
        assert_eq!(format!("{r}"), "SM[2..5)");
    }

    #[test]
    fn first_fit_reserves_disjoint_contiguous_runs() {
        let mut t = SmPartitionTable::new(6);
        assert_eq!(t.free_sms(), 6);
        let a = t.reserve(3).expect("first half");
        let b = t.reserve(3).expect("second half");
        assert_eq!(a.range(), SmRange { start: 0, len: 3 });
        assert_eq!(b.range(), SmRange { start: 3, len: 3 });
        assert_eq!(t.free_sms(), 0);
        assert!(t.reserve(1).is_none(), "nothing left");

        // Releasing the lower half opens exactly that run again.
        t.release(a);
        assert_eq!(t.free_sms(), 3);
        assert_eq!(t.largest_free_run(), 3);
        let c = t.reserve(2).expect("fits the freed run");
        assert_eq!(c.range().start, 0);
    }

    #[test]
    fn fragmented_table_skips_claimed_holes() {
        let mut t = SmPartitionTable::new(6);
        let a = t.reserve(2).expect("0..2");
        let b = t.reserve(2).expect("2..4");
        let _c = t.reserve(2).expect("4..6");
        t.release(a);
        t.release(b);
        // 0..4 free, 4..6 claimed: a 4-wide claim fits at 0.
        let d = t.reserve(4).expect("coalesced run");
        assert_eq!(d.range(), SmRange { start: 0, len: 4 });
        assert!(t.reserve(1).is_none());
        assert_eq!(t.largest_free_run(), 0);
    }

    #[test]
    fn oversized_and_zero_claims_are_refused() {
        let mut t = SmPartitionTable::new(4);
        assert!(t.reserve(0).is_none());
        assert!(t.reserve(5).is_none());
        assert_eq!(t.free_sms(), 4, "refused claims leave the table intact");
    }

    #[test]
    fn blocked_sms_are_skipped_by_first_fit() {
        let mut t = SmPartitionTable::new(6);
        t.block_sm(2);
        t.block_sm(2); // idempotent
        assert_eq!(t.free_sms(), 5);
        assert_eq!(t.largest_free_run(), 3, "3..6 is the longest healthy run");
        let a = t.reserve(3).expect("fits after the hole");
        assert_eq!(a.range(), SmRange { start: 3, len: 3 });
        let b = t.reserve(2).expect("0..2 before the hole");
        assert_eq!(b.range(), SmRange { start: 0, len: 2 });
        assert!(t.reserve(1).is_none(), "only the blocked SM remains");
        t.release(a);
        t.release(b);
        assert_eq!(t.free_sms(), 5, "blocked SM never comes back");
    }

    #[test]
    #[should_panic(expected = "while it is reserved")]
    fn blocking_a_reserved_sm_is_rejected() {
        let mut t = SmPartitionTable::new(4);
        let _a = t.reserve(2).expect("claim 0..2");
        t.block_sm(1);
    }

    #[test]
    #[should_panic(expected = "not held by this table")]
    fn double_release_is_rejected() {
        let mut t = SmPartitionTable::new(4);
        let a = t.reserve(2).expect("claim");
        t.release(a);
        t.release(a);
    }
}
