//! Proves the telemetry layer honors the hot-path allocation contract:
//! with recording **disabled** (the default) every hook is a branch and
//! records nothing — a full device run performs exactly the allocations of
//! a device built without telemetry in the picture — and with recording
//! **enabled** the preallocated ring absorbs events (including past
//! wrap-around) without ever touching the heap.
//!
//! Lives in its own integration binary because the counting allocator is
//! process-global.

use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
use higpu_telemetry::{EventKind, NO_SM};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations made by threads that
/// opted in. The libtest harness runs its own threads (output capture,
/// timers) whose incidental allocations would otherwise race into the
/// counted windows; scoping the counter to the measuring thread keeps the
/// fence about the telemetry layer, not harness timing.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    // try_with: the allocator can be called during TLS teardown.
    COUNTING.try_with(std::cell::Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn loop_kernel() -> std::sync::Arc<higpu_sim::program::Program> {
    let mut b = KernelBuilder::new("loop");
    let base = b.param(0);
    let i = b.global_tid_x();
    let addr = b.addr_w(base, i);
    b.for_range(0u32, 64u32, 1u32, |b, j| {
        let v = b.ldg(addr, 0);
        let v2 = b.iadd(v, j);
        b.stg(addr, 0, v2);
    });
    b.build().expect("valid").into_shared()
}

/// Runs the workload once on `gpu` and returns the allocations observed.
fn run_once(gpu: &mut Gpu) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let buf = gpu.alloc_words(256).expect("alloc");
    gpu.write_u32(buf, &[1u32; 256]);
    let prog = loop_kernel();
    for _ in 0..3 {
        gpu.launch(KernelLaunch::new(
            prog.clone(),
            LaunchConfig::new(8u32, 32u32).param_u32(buf.0),
        ))
        .expect("launch");
    }
    gpu.run_to_idle().expect("run");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

// One test fn: the counting allocator is process-global, so concurrently
// running tests would see each other's allocations.
#[test]
fn telemetry_hooks_honor_the_allocation_contract() {
    COUNTING.with(|c| c.set(true));
    // --- disabled hooks add zero allocations to a device run ------------
    // Warm both devices once (scratch buffers, trace vectors), then compare
    // a second, steady-state run: the simulator is deterministic, so any
    // extra allocation on the enabled device is the telemetry layer's.
    let mut off = Gpu::new(GpuConfig::tiny_2sm());
    let mut on = Gpu::new(GpuConfig {
        telemetry_capacity: Some(4096),
        ..GpuConfig::tiny_2sm()
    });
    run_once(&mut off);
    run_once(&mut on);
    off.reset().expect("idle");
    on.reset().expect("idle");
    let allocs_off = run_once(&mut off);
    let allocs_on = run_once(&mut on);
    assert!(
        !on.telemetry_events().is_empty(),
        "enabled device must actually have recorded the run"
    );
    assert_eq!(
        allocs_on, allocs_off,
        "recording into the preallocated ring must add zero allocations \
         over the disabled path"
    );

    // --- the disabled hook itself is a branch ----------------------------
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        off.record_event(EventKind::FaultArmed, i, NO_SM, 0, 0);
    }
    assert_eq!(
        ALLOCATIONS.load(Ordering::Relaxed) - before,
        0,
        "disabled record_event must not allocate"
    );

    // --- enabled recording never allocates, even past wrap-around --------
    let capacity = 4096u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..3 * capacity {
        on.record_event(EventKind::FaultArmed, i, NO_SM, 0, 0);
    }
    assert_eq!(
        ALLOCATIONS.load(Ordering::Relaxed) - before,
        0,
        "ring wrap-around must overwrite in place, not grow"
    );
    assert!(on.telemetry_overwritten() > 0, "the ring did wrap");
}
