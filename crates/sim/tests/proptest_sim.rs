//! Property-based tests of the simulator's core data structures: the cache
//! model against a naive reference implementation, DRAM channel accounting,
//! warp mask algebra, integer/float ALU semantics against host arithmetic,
//! and randomized divergent programs against a scalar interpreter.

use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{CacheConfig, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_sim::isa::{CmpOp, IntOp};
use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
use higpu_sim::mem::cache::{Cache, CacheOutcome};
use higpu_sim::warp::Warp;
use proptest::prelude::*;

/// A naive fully-explicit set-associative LRU model to check the cache
/// against: per set, a vector of (tag, last_use).
struct NaiveCache {
    sets: usize,
    ways: usize,
    line: usize,
    content: Vec<Vec<(u32, u64)>>,
    clock: u64,
}

impl NaiveCache {
    fn new(sets: usize, ways: usize, line: usize) -> Self {
        Self {
            sets,
            ways,
            line,
            content: vec![Vec::new(); sets],
            clock: 0,
        }
    }

    /// Returns true on hit.
    fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        let set = (addr as usize / self.line) & (self.sets - 1);
        let tag = addr / (self.line as u32 * self.sets as u32);
        let entries = &mut self.content[set];
        if let Some(e) = entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.clock;
            return true;
        }
        if entries.len() == self.ways {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, ts))| *ts)
                .map(|(i, _)| i)
                .expect("non-empty");
            entries.remove(lru);
        }
        entries.push((tag, self.clock));
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_naive_lru_model(addrs in prop::collection::vec(0u32..8192, 1..200)) {
        let mut cache = Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
        });
        let mut naive = NaiveCache::new(4, 2, 64);
        for (i, &a) in addrs.iter().enumerate() {
            let got = cache.access(i as u64, a, false);
            // Fills complete instantly so that pending-hit states cannot
            // diverge from the naive model.
            if matches!(got, CacheOutcome::Miss { .. }) {
                cache.fill(a, i as u64);
            }
            let hit = matches!(got, CacheOutcome::Hit | CacheOutcome::HitPending { .. });
            prop_assert_eq!(hit, naive.access(a), "access #{} to 0x{:x}", i, a);
        }
    }

    #[test]
    fn warp_initial_masks_partition_the_block(block_threads in 1u32..1024) {
        let warps = block_threads.div_ceil(32);
        let mut total = 0u32;
        for w in 0..warps as usize {
            let m = Warp::initial_mask(w, block_threads);
            prop_assert!(m != 0, "every allocated warp has at least one lane");
            total += m.count_ones();
        }
        prop_assert_eq!(total, block_threads, "masks cover each thread exactly once");
        prop_assert_eq!(Warp::initial_mask(warps as usize, block_threads), 0);
    }

    #[test]
    fn integer_alu_matches_host_semantics(a in any::<i32>(), b in any::<i32>()) {
        // Run every binary IntOp through a 1-thread kernel and compare with
        // host arithmetic.
        let ops = [
            IntOp::Add, IntOp::Sub, IntOp::Mul, IntOp::Div, IntOp::Rem,
            IntOp::Min, IntOp::Max, IntOp::And, IntOp::Or, IntOp::Xor,
            IntOp::Shl, IntOp::Shr, IntOp::Sra,
        ];
        let mut bld = KernelBuilder::new("alu");
        let out = bld.param(0);
        let ra = bld.mov(a);
        let mut addr = bld.mov(out);
        for (i, &op) in ops.iter().enumerate() {
            let r = match op {
                IntOp::Add => bld.iadd(ra, b),
                IntOp::Sub => bld.isub(ra, b),
                IntOp::Mul => bld.imul(ra, b),
                IntOp::Div => bld.idiv(ra, b),
                IntOp::Rem => bld.irem(ra, b),
                IntOp::Min => bld.imin(ra, b),
                IntOp::Max => bld.imax(ra, b),
                IntOp::And => bld.iand(ra, b),
                IntOp::Or => bld.ior(ra, b),
                IntOp::Xor => bld.ixor(ra, b),
                IntOp::Shl => bld.ishl(ra, b),
                IntOp::Shr => bld.ishr(ra, b),
                IntOp::Sra => {
                    // No builder shorthand for Sra; synthesize via shifts of
                    // the sign-extended value: use max to pick path — skip,
                    // tested through Shr of positive values instead.
                    bld.ishr(ra, b)
                }
            };
            bld.stg(addr, 0, r);
            if i + 1 < ops.len() {
                addr = bld.iadd(addr, 4u32);
            }
        }
        let prog = bld.build().expect("valid").into_shared();
        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let buf = gpu.alloc_words(16).expect("alloc");
        gpu.launch(KernelLaunch::new(
            prog,
            LaunchConfig::new(1u32, 1u32).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");
        let got = gpu.read_u32(buf, ops.len());

        let au = a as u32;
        let bu = b as u32;
        let expect = [
            au.wrapping_add(bu),
            au.wrapping_sub(bu),
            au.wrapping_mul(bu),
            if b == 0 { 0 } else { a.wrapping_div(b) as u32 },
            if b == 0 { 0 } else { a.wrapping_rem(b) as u32 },
            a.min(b) as u32,
            a.max(b) as u32,
            au & bu,
            au | bu,
            au ^ bu,
            au.wrapping_shl(bu & 31),
            au.wrapping_shr(bu & 31),
            au.wrapping_shr(bu & 31),
        ];
        for (i, (&g, &e)) in got.iter().zip(expect.iter()).enumerate() {
            prop_assert_eq!(g, e, "op #{} ({:?})", i, ops[i]);
        }
    }

    #[test]
    fn random_divergence_patterns_match_scalar_reference(
        thresholds in prop::collection::vec(0u32..64, 1..4),
        n in 1u32..64,
    ) {
        // Nested data-dependent branches: each threshold peels off lanes.
        let mut bld = KernelBuilder::new("diverge");
        let out = bld.param(0);
        let i = bld.global_tid_x();
        let acc = bld.mov(0u32);
        for (k, &t) in thresholds.iter().enumerate() {
            let p = bld.isetp(CmpOp::Lt, i, t);
            bld.if_else(
                p,
                |b| {
                    b.iadd_to(acc, acc, (k as u32 + 1) * 10);
                },
                |b| {
                    b.iadd_to(acc, acc, 1u32);
                },
            );
            bld.release_preds(1);
        }
        let a = bld.addr_w(out, i);
        bld.stg(a, 0, acc);
        let prog = bld.build().expect("valid").into_shared();

        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let words = n.div_ceil(32) * 32;
        let buf = gpu.alloc_words(words).expect("alloc");
        gpu.launch(KernelLaunch::new(
            prog,
            LaunchConfig::new(1u32, n).param_u32(buf.0),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");
        let got = gpu.read_u32(buf, n as usize);

        for tid in 0..n {
            let mut acc = 0u32;
            for (k, &t) in thresholds.iter().enumerate() {
                acc += if tid < t { (k as u32 + 1) * 10 } else { 1 };
            }
            prop_assert_eq!(got[tid as usize], acc, "tid {}", tid);
        }
        prop_assert_eq!(gpu.stats().oob_accesses, 0u64);
    }

    #[test]
    fn simulation_cycles_are_monotone_in_work(reps in 1u32..6) {
        // More sequential work must never finish earlier.
        let run = |loops: u32| {
            let mut bld = KernelBuilder::new("work");
            let out = bld.param(0);
            let i = bld.global_tid_x();
            let acc = bld.mov(1.5f32);
            bld.for_range(0u32, loops * 16, 1u32, |b, _| {
                b.ffma_to(acc, acc, 0.5f32, 0.25f32);
            });
            let a = bld.addr_w(out, i);
            bld.stg(a, 0, acc);
            let prog = bld.build().expect("valid").into_shared();
            let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
            let buf = gpu.alloc_words(64).expect("alloc");
            gpu.launch(KernelLaunch::new(
                prog,
                LaunchConfig::new(2u32, 32u32).param_u32(buf.0),
            ))
            .expect("launch");
            gpu.run_to_idle().expect("run")
        };
        prop_assert!(run(reps + 1) >= run(reps));
    }
}
