//! Proves the full SM issue path — candidate selection, interpretation,
//! memory-system timing and wake-time bookkeeping — performs **zero heap
//! allocations** per issued instruction, under *both* warp scheduling
//! policies (GTO and LRR).
//!
//! This extends the `step_warp` fence (`alloc_free.rs`) one layer up: the
//! event-queue core keeps per-SM ready masks and a wake-time mirror that
//! the pickers consult on every slot, and none of that machinery may touch
//! the heap in steady state. It lives in its own integration binary because
//! the counting allocator is process-global.

use higpu_sim::block::{BlockDims, BlockState};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{GpuConfig, WarpSchedPolicy};
use higpu_sim::fault::NoFaults;
use higpu_sim::kernel::{BlockFootprint, Dim3, KernelId};
use higpu_sim::mem::system::MemorySystem;
use higpu_sim::sm::Sm;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations made by threads that
/// opted in. The libtest harness runs its own threads (output capture,
/// timers) whose incidental allocations would otherwise race into the
/// counted window; scoping the counter to the measuring thread keeps the
/// fence about the issue path, not harness timing.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    // try_with: the allocator can be called during TLS teardown.
    COUNTING.try_with(std::cell::Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A long-running kernel mixing the hot instruction families: a counted
/// loop of global loads, FMA arithmetic and global stores. Long enough
/// that the measurement window never sees a block complete (block retire
/// legitimately frees its state).
fn spin_kernel() -> std::sync::Arc<higpu_sim::program::Program> {
    let mut b = KernelBuilder::new("spin");
    let base = b.param(0);
    let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
    let addr = b.addr_w(base, tid);
    b.for_range(0u32, 512u32, 1u32, |b, i| {
        let v = b.ldg(addr, 0);
        let f = b.i2f(v);
        let acc = b.ffma(f, 1.0009f32, 0.25f32);
        let w = b.f2i(acc);
        let w2 = b.iadd(w, i);
        b.stg(addr, 0, w2);
    });
    b.build().expect("valid").into_shared()
}

/// A kernel whose inner loop is dominated by *uniform* work — scalar
/// constants, loop-counter arithmetic, a single shared load address — so
/// the counted window runs through the uniform-scalarization fast paths
/// (bitmap updates, splat row writes, single-sector memory traffic) of the
/// pre-decoded interpreter rather than the per-lane loops.
fn uniform_spin_kernel() -> std::sync::Arc<higpu_sim::program::Program> {
    let mut b = KernelBuilder::new("uniform_spin");
    let base = b.param(0);
    let zero = b.mov(0u32);
    let addr = b.addr_w(base, zero);
    b.for_range(0u32, 512u32, 1u32, |b, i| {
        let v = b.ldg(addr, 0);
        let s = b.iadd(v, i);
        let s2 = b.imul(s, 3u32);
        let s3 = b.ixor(s2, 0x5a5a_5a5au32);
        b.stg(addr, 0, s3);
    });
    b.build().expect("valid").into_shared()
}

/// Drives one SM's issue loop directly (the way the device cores do) and
/// returns the instructions issued inside the counted window alongside the
/// allocations observed there.
fn measure(
    policy: WarpSchedPolicy,
    prog: std::sync::Arc<higpu_sim::program::Program>,
) -> (u64, u64) {
    let cfg = GpuConfig {
        warp_scheduler: policy,
        ..GpuConfig::tiny_2sm()
    };
    let mut sm = Sm::new(0, &cfg);
    let regs = prog.regs_per_thread();
    // Two 64-thread blocks: two warps per block keeps both pickers'
    // block-and-warp rotation logic exercised.
    let fp = BlockFootprint {
        threads: 64,
        warps: 2,
        registers: 64 * regs as u32,
        shared_mem: 0,
    };
    let params: std::sync::Arc<[u32]> = std::sync::Arc::from(vec![0u32].into_boxed_slice());
    for blk in 0..2u32 {
        let dims = BlockDims {
            ctaid: (blk, 0, 0),
            ntid: Dim3::x(64),
            nctaid: Dim3::x(2),
        };
        sm.admit(BlockState::new(
            KernelId(0),
            blk,
            dims,
            prog.clone(),
            params.clone(),
            fp,
            0,
            0,
        ));
    }
    let mut memsys = MemorySystem::new(&cfg);
    let mut global = vec![0u32; 4096];
    let mut hook = NoFaults;
    let mut dirty = 0u32;
    let mut completions = Vec::with_capacity(4);

    let advance = |sm: &mut Sm, now: &mut u64| {
        let next = sm.next_ready_at();
        *now = next.max(*now + 1);
        next != u64::MAX
    };

    // Warm-up: size every scratch buffer (ready masks, coalesce buffers,
    // cache metadata, completions).
    let mut now = 0u64;
    for _ in 0..256 {
        sm.issue(
            now,
            &mut global,
            &mut dirty,
            &mut memsys,
            &mut hook,
            false,
            &mut completions,
        );
        if !advance(&mut sm, &mut now) {
            panic!("spin kernel retired during warm-up — lengthen the loop");
        }
    }

    // Counted window: thousands of issue slots, zero allocations allowed.
    // Re-reading the pre-decoded stream inside the window pins decode as a
    // build-time cost: the interpreter's `DOp` path must never re-decode
    // (or otherwise allocate) in steady state.
    let issued_before = sm.stats().instrs_issued;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut decoded_len = 0usize;
    for _ in 0..4096 {
        decoded_len = decoded_len.max(prog.decoded().len());
        sm.issue(
            now,
            &mut global,
            &mut dirty,
            &mut memsys,
            &mut hook,
            false,
            &mut completions,
        );
        if !advance(&mut sm, &mut now) {
            panic!("spin kernel retired inside the counted window — lengthen the loop");
        }
    }
    assert!(decoded_len > 0, "decoded stream must be non-empty");
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let issued = sm.stats().instrs_issued - issued_before;
    (issued, allocs)
}

// One test, both policies and both instruction mixes: the counting
// allocator is process-global, so two concurrently running tests would see
// each other's allocations. The divergent spin kernel drives the per-lane
// paths; the uniform spin kernel drives the scalarization fast paths —
// both must stay allocation-free after warm-up.
#[test]
fn issue_path_is_allocation_free_under_both_policies() {
    COUNTING.with(|c| c.set(true));
    for (label, prog) in [
        ("divergent", spin_kernel()),
        ("uniform", uniform_spin_kernel()),
    ] {
        for policy in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
            let (issued, allocs) = measure(policy, prog.clone());
            assert!(
                issued > 1000,
                "{label}/{policy:?}: window must issue real work (got {issued})"
            );
            assert_eq!(
                allocs, 0,
                "{label}/{policy:?} issued {issued} instructions with {allocs} allocations"
            );
        }
    }
}
