//! Proves the no-fault execution hot path performs **zero heap
//! allocations** per instruction: a counting global allocator observes the
//! `step_warp` interpreter loop over compute, global-memory and atomic
//! instructions.
//!
//! This is the regression fence for the inline-buffer rework (memory
//! effects deposited in reusable `TxBuf`/`LaneAddrs` scratch instead of
//! `Vec`s) — any reintroduction of a per-instruction allocation fails this
//! test loudly.

use higpu_sim::block::BlockDims;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::exec::{step_warp, ExecCtx, StepEffect};
use higpu_sim::fault::NoFaults;
use higpu_sim::kernel::{Dim3, KernelId};
use higpu_sim::warp::{Warp, WarpState};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A kernel exercising every hot instruction family: ALU, FMA, SFU,
/// divergent control flow, global loads/stores and a global atomic.
fn hot_kernel() -> std::sync::Arc<higpu_sim::program::Program> {
    let mut b = KernelBuilder::new("hot");
    let base = b.param(0);
    let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
    let addr = b.addr_w(base, tid);
    let v = b.ldg(addr, 0);
    let fv = b.i2f(v);
    let mut acc = b.fmul(fv, 1.5f32);
    for _ in 0..4 {
        acc = b.ffma(acc, 0.5f32, 2.25f32);
    }
    let s = b.fsqrt(acc);
    let p = b.isetp(higpu_sim::isa::CmpOp::Lt, tid, 16u32);
    b.if_else(
        p,
        |b| {
            b.stg(addr, 0, tid);
        },
        |b| {
            let one = b.mov(1u32);
            let _ = b.atom_add(base, 0, one);
        },
    );
    let back = b.f2i(s);
    b.stg(addr, 128, back);
    b.build().expect("valid").into_shared()
}

#[test]
fn no_fault_hot_path_is_allocation_free() {
    let prog = hot_kernel();
    let mut warp = Warp::new(0, u32::MAX, prog.regs_per_thread(), 0);
    let mut global = vec![0u32; 16 * 1024];
    let mut shared = vec![0u32; 256];
    let mut oob = 0u64;
    let mut dirty = 0u32;
    let mut hook = NoFaults;
    let dims = BlockDims {
        ctaid: (0, 0, 0),
        ntid: Dim3::x(32),
        nctaid: Dim3::x(1),
    };

    // Warm up nothing — count every allocation across the whole interpreter
    // loop, including the effects the SM would consume.
    let mut txs = higpu_sim::mem::coalesce::TxBuf::new();
    let mut atom_addrs = higpu_sim::exec::LaneAddrs::new();
    let mut instrs = 0u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while warp.state == WarpState::Ready {
        let mut ctx = ExecCtx {
            global_mem: &mut global,
            shared_mem: &mut shared,
            params: &[0],
            dims,
            sm_id: 0,
            cycle: instrs,
            kernel: KernelId(0),
            block: 0,
            fault: &mut hook,
            fault_enabled: false,
            oob_accesses: &mut oob,
            global_dirty: &mut dirty,
            txs: &mut txs,
            atom_addrs: &mut atom_addrs,
        };
        let effect = step_warp(&mut warp, prog.decoded(), &mut ctx);
        // Consume memory effects the way the SM does (slice views only).
        match effect {
            StepEffect::GlobalMem => {
                assert!(!txs.as_slice().is_empty());
            }
            StepEffect::Atomic => {
                assert!(!atom_addrs.as_slice().is_empty());
            }
            _ => {}
        }
        if effect == StepEffect::Finished {
            break;
        }
        instrs += 1;
        assert!(instrs < 10_000, "runaway program");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(instrs > 10, "kernel must actually execute: {instrs}");
    assert_eq!(oob, 0, "test kernel stays in bounds");
    assert_eq!(
        after - before,
        0,
        "no-fault interpreter loop must not allocate ({} allocations over {} instructions)",
        after - before,
        instrs
    );
    assert!(dirty > 0, "stores must raise the dirty high-water mark");
}
