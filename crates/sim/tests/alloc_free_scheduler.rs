//! Proves steady-state scheduling rounds perform **zero heap allocations**:
//! the snapshot/assignment/fit buffers are scratch reused across rounds and
//! the launch attributes are shared by `Arc`, not deep-cloned.
//!
//! This is the regression fence for the `SchedScratch` rework in
//! `Gpu::run_scheduler`. It lives in its own single-test integration binary
//! (like `alloc_free.rs` for the per-instruction claim) because the
//! counting allocator is process-global: sharing a binary with concurrently
//! running tests would make the count racy.

use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn inc_kernel() -> std::sync::Arc<higpu_sim::program::Program> {
    let mut b = KernelBuilder::new("inc");
    let base = b.param(0);
    let i = b.global_tid_x();
    let a = b.addr_w(base, i);
    let v = b.ldg(a, 0);
    let v1 = b.iadd(v, 1u32);
    b.stg(a, 0, v1);
    b.build().expect("valid").into_shared()
}

#[test]
fn scheduler_rounds_are_allocation_free_after_warmup() {
    let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
    let buf = gpu.alloc_words(64).expect("alloc");
    // More blocks than the device can host at once, across two kernels, so
    // every round still sees pending work to snapshot and consider.
    for _ in 0..2 {
        gpu.launch(
            KernelLaunch::new(
                inc_kernel(),
                LaunchConfig::new(64u32, 32u32).param_u32(buf.0),
            )
            .tag("pressure"),
        )
        .expect("launch");
    }
    // Warm-up round: fills the SMs and sizes the scratch buffers.
    let pending = gpu.debug_scheduler_round();
    assert!(pending > 0, "rounds must have work left to weigh");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..64 {
        gpu.debug_scheduler_round();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "64 steady-state scheduling rounds must not allocate"
    );
}
