//! Snapshot/restore fences: restoring a [`higpu_sim::gpu::DeviceSnapshot`]
//! and running to idle must be **bit-identical** — same issue stream, same
//! statistics, same trace, same memory image — to running straight through,
//! on either device core, from any pause point.
//!
//! Also fences the two satellite contracts of checkpointed campaigns:
//!
//! * watchdog deadlines are absolute cycles and are *not* part of the
//!   snapshot — a trial restored at cycle `C` keeps the same effective
//!   deadline (and cut-off cycle) as a from-zero trial;
//! * [`higpu_sim::gpu::Gpu::run_to_cycle`] pauses are transparent: any
//!   number of pauses anywhere in the run leaves the observable behaviour
//!   unchanged.

use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::{DevPtr, Gpu, SimError};
use higpu_sim::kernel::{KernelLaunch, LaunchConfig};
use higpu_sim::program::Program;
use higpu_sim::sm::IssueRecord;
use higpu_sim::stats::SimStats;
use higpu_sim::trace::ExecutionTrace;
use std::sync::Arc;

/// A compute-heavy kernel: per-thread loop mixing ALU, FMA, SFU and global
/// memory traffic, with a barrier so multi-warp wake/sleep transitions are
/// exercised across the snapshot point.
fn mix_kernel() -> Arc<Program> {
    let mut b = KernelBuilder::new("mix");
    let base = b.param(0);
    let i = b.global_tid_x();
    let addr = b.addr_w(base, i);
    b.for_range(0u32, 12u32, 1u32, |b, k| {
        let v = b.ldg(addr, 0);
        let f = b.i2f(v);
        let g = b.ffma(f, 1.5f32, 0.25f32);
        let s = b.fsqrt(g);
        let _ = b.fadd(s, 1.0f32);
        let v1 = b.iadd(v, 1u32);
        b.stg(addr, 0, v1);
        let _ = b.imul(k, 3u32);
        b.bar();
    });
    b.build().expect("valid").into_shared()
}

/// A short memory kernel, launched with a dispatch delay so the run has a
/// long arrival gap for pauses to land in.
fn inc_kernel() -> Arc<Program> {
    let mut b = KernelBuilder::new("inc");
    let base = b.param(0);
    let i = b.global_tid_x();
    let addr = b.addr_w(base, i);
    let v = b.ldg(addr, 0);
    let v1 = b.iadd(v, 7u32);
    b.stg(addr, 0, v1);
    b.build().expect("valid").into_shared()
}

const BUF_A_WORDS: u32 = 6 * 64;
const BUF_B_WORDS: u32 = 8 * 32;

/// Builds a device with the full workload launched but not yet run.
fn setup(core: CoreKind) -> (Gpu, DevPtr, DevPtr) {
    let cfg = GpuConfig {
        core,
        ..GpuConfig::paper_6sm()
    };
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    let a = gpu.alloc_words(BUF_A_WORDS).expect("alloc a");
    let b = gpu.alloc_words(BUF_B_WORDS).expect("alloc b");
    gpu.write_u32(a, &vec![3u32; BUF_A_WORDS as usize]);
    gpu.write_u32(b, &vec![10u32; BUF_B_WORDS as usize]);
    gpu.launch(KernelLaunch::new(
        mix_kernel(),
        LaunchConfig::new(6u32, 64u32).param_u32(a.0),
    ))
    .expect("launch mix");
    gpu.launch(
        KernelLaunch::new(inc_kernel(), LaunchConfig::new(8u32, 32u32).param_u32(b.0))
            .dispatch_delay(900),
    )
    .expect("launch inc");
    (gpu, a, b)
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct RunOut {
    makespan: u64,
    issues: Vec<IssueRecord>,
    stats: SimStats,
    trace: ExecutionTrace,
    mem_a: Vec<u32>,
    mem_b: Vec<u32>,
}

fn collect(gpu: &mut Gpu, a: DevPtr, b: DevPtr) -> RunOut {
    RunOut {
        makespan: gpu.cycle(),
        issues: gpu.drain_issue_log(),
        stats: gpu.stats(),
        trace: gpu.trace().clone(),
        mem_a: gpu.read_u32(a, BUF_A_WORDS as usize),
        mem_b: gpu.read_u32(b, BUF_B_WORDS as usize),
    }
}

fn straight_run(core: CoreKind) -> RunOut {
    let (mut gpu, a, b) = setup(core);
    gpu.run_to_idle().expect("straight run");
    collect(&mut gpu, a, b)
}

#[test]
fn restore_then_run_is_bit_identical_from_any_pause_point() {
    for core in [CoreKind::Stepping, CoreKind::Event] {
        let straight = straight_run(core);
        assert!(!straight.issues.is_empty());
        let m = straight.makespan;
        // Pause points across the whole run, including degenerate edges:
        // cycle 0 (nothing executed yet) and past the makespan (no pause).
        for target in [0, 1, m / 8, m / 3, m / 2, 2 * m / 3, m - 1, m + 50] {
            let (mut rec, ra, rb) = setup(core);
            let idle = rec.run_to_cycle(target).expect("paused run");
            assert_eq!(
                idle,
                target > m,
                "pause at {target} of {m}: idle iff past the makespan"
            );
            let snap = rec.snapshot();
            assert_eq!(snap.cycle(), rec.cycle());

            // Path 1: the paused device resumes.
            rec.run_to_idle().expect("resume");
            let resumed = collect(&mut rec, ra, rb);
            assert_eq!(
                resumed, straight,
                "{core:?}: pause at {target} perturbed the run"
            );

            // Path 2: a bare device restores the snapshot and finishes.
            let cfg = GpuConfig {
                core,
                ..GpuConfig::paper_6sm()
            };
            let mut fresh = Gpu::new(cfg);
            fresh.restore(&snap);
            fresh.run_to_idle().expect("restored run");
            let restored = collect(&mut fresh, ra, rb);
            assert_eq!(
                restored, straight,
                "{core:?}: restore at {target} diverged from the straight run"
            );

            // Snapshots are reusable: a second restore replays identically.
            let mut again = Gpu::new(GpuConfig {
                core,
                ..GpuConfig::paper_6sm()
            });
            again.restore(&snap);
            again.run_to_idle().expect("second restored run");
            assert_eq!(collect(&mut again, ra, rb), straight);
        }
    }
}

#[test]
fn restore_is_bit_identical_across_cores() {
    // A snapshot taken on one core finishes identically on *both* cores —
    // snapshots carry no core-specific state.
    let straight = straight_run(CoreKind::Stepping);
    let (mut rec, a, b) = setup(CoreKind::Event);
    rec.run_to_cycle(straight.makespan / 2).expect("pause");
    let snap = rec.snapshot();
    let mut outs = Vec::new();
    for core in [CoreKind::Stepping, CoreKind::Event] {
        let mut gpu = Gpu::new(GpuConfig {
            core,
            ..GpuConfig::paper_6sm()
        });
        gpu.restore(&snap);
        gpu.run_to_idle().expect("restored run");
        outs.push(collect(&mut gpu, a, b));
    }
    assert_eq!(outs[0], straight, "stepping restore diverged");
    assert_eq!(outs[1], straight, "event restore diverged");
}

#[test]
fn watchdog_deadline_is_absolute_across_restore() {
    let straight = straight_run(CoreKind::Event);
    let limit = straight.makespan / 2;

    // From-zero trial with the deadline armed: cut off mid-run.
    let (mut gpu, _, _) = setup(CoreKind::Event);
    gpu.set_cycle_limit(Some(limit));
    let from_zero = gpu.run_to_idle().expect_err("deadline must fire");
    let SimError::DeadlineExceeded { cycle: cut0, .. } = from_zero else {
        panic!("expected DeadlineExceeded, got {from_zero:?}");
    };
    assert!(cut0 > limit);

    // Reference pass (no deadline) pauses well before the cut and
    // snapshots; the snapshot must NOT carry a watchdog state of its own.
    let (mut rec, _, _) = setup(CoreKind::Event);
    rec.run_to_cycle(limit / 2).expect("pause");
    assert!(rec.cycle() < cut0, "pause point must precede the cut");
    let snap = rec.snapshot();

    // A restored trial with the same absolute deadline is cut at the same
    // cycle — restoring at cycle C neither gains nor loses C cycles.
    let mut trial = Gpu::new(GpuConfig {
        core: CoreKind::Event,
        ..GpuConfig::paper_6sm()
    });
    trial.set_cycle_limit(Some(limit));
    trial.restore(&snap);
    assert_eq!(
        trial.cycle_limit(),
        Some(limit),
        "restore must preserve the armed deadline"
    );
    let restored = trial.run_to_idle().expect_err("deadline must still fire");
    assert_eq!(
        restored, from_zero,
        "restored trial cut at a different cycle than from-zero"
    );

    // Without a deadline the same snapshot runs to the straight makespan.
    let mut free = Gpu::new(GpuConfig {
        core: CoreKind::Event,
        ..GpuConfig::paper_6sm()
    });
    free.restore(&snap);
    assert_eq!(free.cycle_limit(), None);
    assert_eq!(free.run_to_idle().expect("no deadline"), straight.makespan);
}

#[test]
fn wide_device_uses_wheel_core_and_stays_bit_identical() {
    // Above Gpu::FLAT_SM_LIMIT the event core takes the time-wheel path;
    // keep it covered against the stepping oracle (the registry devices are
    // all narrow, so without this fence the wheel would go untested).
    let wide = |core| {
        let cfg = GpuConfig {
            core,
            num_sms: Gpu::FLAT_SM_LIMIT + 8,
            ..GpuConfig::paper_6sm()
        };
        cfg.validate().expect("valid wide config");
        let mut gpu = Gpu::new(cfg);
        gpu.set_issue_log(true);
        let a = gpu.alloc_words(BUF_A_WORDS).expect("alloc");
        gpu.write_u32(a, &vec![3u32; BUF_A_WORDS as usize]);
        gpu.launch(KernelLaunch::new(
            mix_kernel(),
            LaunchConfig::new(48u32, 64u32).param_u32(a.0),
        ))
        .expect("launch");
        gpu.launch(
            KernelLaunch::new(inc_kernel(), LaunchConfig::new(8u32, 32u32).param_u32(a.0))
                .dispatch_delay(900),
        )
        .expect("launch 2");
        gpu.run_to_idle().expect("run");
        collect(&mut gpu, a, a)
    };
    assert!(GpuConfig::paper_6sm().num_sms <= Gpu::FLAT_SM_LIMIT);
    let oracle = wide(CoreKind::Stepping);
    let event = wide(CoreKind::Event);
    assert!(!oracle.issues.is_empty());
    assert_eq!(oracle, event, "wheel event core diverged from stepping");
}

#[test]
fn reset_discards_pending_event_state() {
    // The event core's queues are rebuilt on every run entry, so stale
    // entries surviving `force_reset`/`reset` must be unobservable: a
    // device force-reset mid-run behaves exactly like a fresh one.
    let fresh = straight_run(CoreKind::Event);
    let (mut gpu, _, _) = setup(CoreKind::Event);
    gpu.run_to_cycle(fresh.makespan / 2).expect("pause mid-run");
    assert!(!gpu.is_idle(), "pause must land mid-run");
    gpu.force_reset();
    // Re-run the identical workload on the recycled device.
    gpu.set_issue_log(true);
    let a = gpu.alloc_words(BUF_A_WORDS).expect("alloc a");
    let b = gpu.alloc_words(BUF_B_WORDS).expect("alloc b");
    gpu.write_u32(a, &vec![3u32; BUF_A_WORDS as usize]);
    gpu.write_u32(b, &vec![10u32; BUF_B_WORDS as usize]);
    gpu.launch(KernelLaunch::new(
        mix_kernel(),
        LaunchConfig::new(6u32, 64u32).param_u32(a.0),
    ))
    .expect("launch mix");
    gpu.launch(
        KernelLaunch::new(inc_kernel(), LaunchConfig::new(8u32, 32u32).param_u32(b.0))
            .dispatch_delay(900),
    )
    .expect("launch inc");
    gpu.run_to_idle().expect("re-run");
    let rerun = collect(&mut gpu, a, b);
    assert_eq!(
        rerun, fresh,
        "event state leaked across force_reset into the next run"
    );
}

#[test]
fn snapshot_golden() {
    // Golden fence: the exact observable coordinates of the fixed workload
    // above, so an accidental semantic change to snapshot/restore (or to
    // the cores) fails loudly with numbers instead of a silent re-baseline.
    let straight = straight_run(CoreKind::Event);
    let (mut rec, _, _) = setup(CoreKind::Event);
    rec.run_to_cycle(straight.makespan / 2).expect("pause");
    let snap = rec.snapshot();
    assert_eq!(straight.makespan, GOLDEN_MAKESPAN, "makespan drifted");
    assert_eq!(
        straight.issues.len() as u64,
        GOLDEN_ISSUES,
        "issue count drifted"
    );
    assert_eq!(
        straight.stats.instructions, GOLDEN_INSTRUCTIONS,
        "instruction count drifted"
    );
    assert_eq!(snap.cycle(), GOLDEN_SNAP_CYCLE, "pause cycle drifted");
    assert!(snap.approx_bytes() > 0);
}

const GOLDEN_MAKESPAN: u64 = 15_400;
const GOLDEN_ISSUES: u64 = 2_072;
const GOLDEN_INSTRUCTIONS: u64 = 2_072;
const GOLDEN_SNAP_CYCLE: u64 = 7_706;
